// Package obs is a stdlib-only metrics layer for the KNN service: named
// counters, gauges, bounded histograms and text values collected in a
// Registry and exported as one JSON snapshot (the /metrics endpoint).
//
// The design optimizes for instrumented hot paths:
//
//   - Every handle method is safe on a nil receiver and a nil Registry
//     hands out nil handles, so library code instruments unconditionally —
//     callers that pass no registry pay a nil check per event, never an
//     allocation or an atomic.
//   - Counter increments are single atomic adds; hot loops that process
//     blocks of work accumulate into a stack-allocated Local and fold into
//     the shared counter once per block, so the contended cache line is
//     touched once per block instead of once per pair.
//   - Histograms have a fixed, bounded bucket layout chosen at creation:
//     observing is a binary search plus three atomics, and a snapshot is
//     O(buckets) with no allocation proportional to observation count.
//
// Handle lookup (Registry.Counter etc.) takes a mutex and is meant for
// setup code; hot paths cache the returned handle.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a set of named metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is valid and hands out nil handles,
// turning all instrumentation into no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	texts      map[string]*Text
	windows    map[string]*Window
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		texts:      map[string]*Text{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds (ascending; an implicit +Inf overflow bucket is
// appended) on first use. Later calls ignore the bounds argument and return
// the existing histogram. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Text returns the text value with the given name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Text(name string) *Text {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.texts[name]
	if !ok {
		t = &Text{}
		r.texts[name] = t
	}
	return t
}

// SetText sets the named text value. No-op on a nil registry.
func (r *Registry) SetText(name, value string) { r.Text(name).Set(value) }

// TextValue returns the named text value, or "" when absent or on a nil
// registry.
func (r *Registry) TextValue(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	t := r.texts[name]
	r.mu.Unlock()
	return t.Value()
}

// Counter is a monotonically increasing int64. All methods are safe on nil.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Local is a worker-local shard of a Counter: a plain int64 the worker
// bumps allocation- and contention-free, folded into the shared counter
// with one atomic per Flush. Declare it as a stack value in the worker and
// flush once per block (and once at exit):
//
//	lc := obs.Local{C: reg.Counter("pairs")}
//	defer lc.Flush()
//	for ... { lc.Add(blockPairs); lc.Flush() }
type Local struct {
	C *Counter
	n int64
}

// Add accumulates n locally.
func (l *Local) Add(n int64) { l.n += n }

// Inc accumulates one locally.
func (l *Local) Inc() { l.n++ }

// Flush folds the accumulated value into the shared counter and resets the
// local shard.
func (l *Local) Flush() {
	if l.n != 0 {
		l.C.Add(l.n)
		l.n = 0
	}
}

// Gauge is an instantaneous int64 value. All methods are safe on nil.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed set of buckets with upper
// bounds chosen at creation, plus an overflow bucket. Memory is bounded by
// the bucket count regardless of how many values are observed. All methods
// are safe on nil.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; counts has one extra +Inf slot
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Text is an instantaneous string value (e.g. the current build phase).
// All methods are safe on nil.
type Text struct{ v atomic.Value }

// Set replaces the value.
func (t *Text) Set(s string) {
	if t != nil {
		t.v.Store(s)
	}
}

// Value returns the current value ("" on nil or never set).
func (t *Text) Value() string {
	if t == nil {
		return ""
	}
	s, _ := t.v.Load().(string)
	return s
}

// DefTimeBuckets is the default bucket layout for phase/build durations in
// seconds: sub-millisecond unit-test builds through multi-minute
// production scans.
var DefTimeBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
	1, 5, 10, 30, 60, 120, 300, 600,
}

// DefWaitBuckets is the default bucket layout for request-scale latencies
// in seconds — admission queue waits and query service times: dense in the
// sub-second range where shed thresholds live, capped at the minute scale
// past which a request has long exceeded any sane deadline.
var DefWaitBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}
