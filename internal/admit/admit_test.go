package admit

import (
	"context"
	"sync"
	"testing"
	"time"

	"goldfinger/internal/obs"
)

func testConfig() Config {
	return Config{
		Read:  ClassConfig{MaxInflight: 2, MaxQueue: 2, Timeout: time.Second},
		Query: ClassConfig{MaxInflight: 1, MaxQueue: 1, Timeout: time.Second},
		Write: ClassConfig{MaxInflight: 1, MaxQueue: 0, Timeout: time.Second},
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	for cl := Class(0); cl < numClasses; cl++ {
		release, res := c.Admit(context.Background(), cl)
		if res.Outcome != Admitted || release == nil {
			t.Fatalf("nil controller class %s: %+v", cl, res)
		}
		release()
	}
	if c.Timeout(Query) != 0 || c.Overloaded() || c.Snapshot() != nil {
		t.Error("nil controller leaked state")
	}
}

func TestFastPathAndRelease(t *testing.T) {
	c := NewController(testConfig(), obs.NewRegistry())
	r1, res1 := c.Admit(context.Background(), Query)
	if res1.Outcome != Admitted {
		t.Fatalf("first admit: %+v", res1)
	}
	// Slot busy, queue empty: second request queues until r1 releases.
	done := make(chan Result, 1)
	go func() {
		r2, res2 := c.Admit(context.Background(), Query)
		if r2 != nil {
			r2()
		}
		done <- res2
	}()
	// Give the goroutine time to enter the queue, then free the slot.
	waitFor(t, func() bool { return c.Snapshot()["query"].Queued == 1 })
	r1()
	res2 := <-done
	if res2.Outcome != AdmittedAfterWait {
		t.Fatalf("queued admit: %+v", res2)
	}
	st := c.Snapshot()["query"]
	if st.Admitted != 1 || st.QueuedAdmitted != 1 || st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("final stats: %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := NewController(testConfig(), obs.NewRegistry())
	// Write class: MaxInflight 1, MaxQueue 0 — the second request sheds.
	r1, _ := c.Admit(context.Background(), Write)
	defer r1()
	_, res := c.Admit(context.Background(), Write)
	if res.Outcome != Shed {
		t.Fatalf("want Shed with full queue, got %+v", res)
	}
	if res.RetryAfter < time.Second {
		t.Errorf("RetryAfter %v below the 1s floor", res.RetryAfter)
	}
	if got := c.Snapshot()["write"].Shed; got != 1 {
		t.Errorf("shed count = %d", got)
	}
}

func TestDeadlineExceededWhileQueued(t *testing.T) {
	c := NewController(testConfig(), obs.NewRegistry())
	r1, _ := c.Admit(context.Background(), Query)
	defer r1()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, res := c.Admit(ctx, Query)
	if res.Outcome != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %+v", res)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("deadline admit took %v, should fail near the 20ms deadline", waited)
	}
	if !res.Rejected() {
		t.Error("DeadlineExceeded not Rejected()")
	}
}

// TestAdaptiveShedTripsAndRecovers drives the query class into sustained
// queue waits, checks that new arrivals are shed without queueing, then
// checks the signal decays and the queue reopens.
func TestAdaptiveShedTripsAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.Query = ClassConfig{MaxInflight: 1, MaxQueue: 4, Timeout: time.Second, ShedWait: 10 * time.Millisecond}
	c := NewController(cfg, obs.NewRegistry())

	// Hold the only slot and push waiters through 30ms queue stints so the
	// EWMA rises well above the 10ms threshold.
	hold, _ := c.Admit(context.Background(), Query)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if release, res := c.Admit(ctx, Query); !res.Rejected() {
				release()
			}
		}()
	}
	wg.Wait()

	// The slot is still held and the signal is hot: this arrival must be
	// shed immediately, not queued for its full deadline.
	start := time.Now()
	_, res := c.Admit(context.Background(), Query)
	if res.Outcome != Shed {
		t.Fatalf("hot signal: want Shed, got %+v", res)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("shed took %v, want immediate", d)
	}
	if !c.Overloaded() {
		t.Error("Overloaded() false while shedding")
	}

	// Free the slot and let the signal decay (half-life = ShedWait = 10ms;
	// a few half-lives bring 30ms under 10ms). The queue must reopen.
	hold()
	waitFor(t, func() bool {
		release, res := c.Admit(context.Background(), Query)
		if res.Rejected() {
			return false
		}
		release()
		return true
	})
}

func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(10, 2) // 10/s, burst 2
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens not available")
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a request")
	}
	ra := b.RetryAfter()
	if ra <= 0 || ra > 100*time.Millisecond {
		t.Errorf("RetryAfter = %v, want (0, 100ms] at 10 tokens/s", ra)
	}
	now = now.Add(100 * time.Millisecond) // one token refilled
	if !b.Allow() {
		t.Error("token not refilled after 100ms at 10/s")
	}
	if b.Allow() {
		t.Error("second token allowed after a single refill interval")
	}
	now = now.Add(time.Hour) // refill far past burst: capacity caps at 2
	if !b.Allow() || !b.Allow() {
		t.Error("bucket did not refill to burst")
	}
	if b.Allow() {
		t.Error("bucket exceeded burst capacity")
	}
}

func TestControllerRateLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 1e-9 // effectively zero refill
	cfg.Burst = 1
	c := NewController(cfg, obs.NewRegistry())
	release, res := c.Admit(context.Background(), Read)
	if res.Outcome != Admitted {
		t.Fatalf("first request: %+v", res)
	}
	release()
	_, res = c.Admit(context.Background(), Read)
	if res.Outcome != RateLimited {
		t.Fatalf("second request: want RateLimited, got %+v", res)
	}
	if res.RetryAfter < time.Second {
		t.Errorf("RetryAfter %v below floor", res.RetryAfter)
	}
	if c.RateLimited() != 1 {
		t.Errorf("RateLimited() = %d", c.RateLimited())
	}
}

// TestConcurrentAdmitRace hammers one limiter from many goroutines: every
// admitted request must release, in-flight must never exceed MaxInflight,
// and the final gauges must return to zero. Run under -race.
func TestConcurrentAdmitRace(t *testing.T) {
	cfg := testConfig()
	cfg.Query = ClassConfig{MaxInflight: 4, MaxQueue: 8, Timeout: time.Second}
	reg := obs.NewRegistry()
	c := NewController(cfg, reg)

	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := int64(0)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			release, res := c.Admit(ctx, Query)
			if res.Rejected() {
				return
			}
			cur := c.Snapshot()["query"].Inflight
			mu.Lock()
			if cur > maxSeen {
				maxSeen = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	wg.Wait()
	if maxSeen > 4 {
		t.Errorf("observed %d in-flight, limit 4", maxSeen)
	}
	st := c.Snapshot()["query"]
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("limiter did not drain: %+v", st)
	}
	if total := st.Admitted + st.QueuedAdmitted + st.Shed + st.DeadlineExceeded; total != 64 {
		t.Errorf("decisions = %d, want 64", total)
	}
	// The wait histogram counts every queued request (admitted or not).
	if h := reg.Histogram("admit.query.wait.seconds", nil); h.Count() != st.QueuedAdmitted+st.DeadlineExceeded {
		t.Errorf("wait histogram count %d != queued_admitted %d + deadline %d",
			h.Count(), st.QueuedAdmitted, st.DeadlineExceeded)
	}
}

func TestWaitSignalDecay(t *testing.T) {
	s := waitSignal{halfLife: 10 * time.Millisecond}
	s.observe(40 * time.Millisecond)
	s.observe(40 * time.Millisecond)
	s.observe(40 * time.Millisecond)
	if got := s.load(); got < 5*time.Millisecond {
		t.Fatalf("signal after three 40ms waits = %v, want well above zero", got)
	}
	time.Sleep(80 * time.Millisecond) // 8 half-lives: /256
	if got := s.load(); got > 2*time.Millisecond {
		t.Errorf("signal did not decay: %v after 8 half-lives", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
