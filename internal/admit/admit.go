// Package admit is a stdlib-only admission-control layer for the KNN
// service: per-endpoint-class concurrency limiters with a bounded wait
// queue, a global token-bucket rate limiter, and an adaptive shed signal
// fed by observed queue wait times.
//
// The design goal is graceful degradation: under sustained overload the
// server must convert excess work into fast, honest rejections (429/503
// with a computed Retry-After) instead of letting every request's latency
// grow without bound until the process collapses. Three mechanisms stack:
//
//   - A per-class concurrency limiter caps how many requests of a class
//     (cheap reads, expensive similarity queries, mutating writes) execute
//     at once. The classes are independent, so a query storm cannot starve
//     health probes or uploads and vice versa.
//   - A bounded wait queue in front of each limiter absorbs short bursts:
//     a request that finds every slot busy waits for one — but only while
//     its deadline lasts and only while the queue has room. A full queue
//     sheds immediately; queue slots are never a second, hidden thread
//     pool.
//   - An adaptive shed signal: each limiter tracks an exponentially-decayed
//     moving average of recent queue waits. Once that average exceeds the
//     class's shed threshold, new arrivals that cannot be admitted
//     immediately are shed without queueing — under sustained overload the
//     queue is just deferred shedding plus wasted client time, so failing
//     fast is strictly kinder. The signal decays with time, so the queue
//     reopens as soon as pressure drops.
//
// All decisions (admitted, admitted after queueing, shed, deadline
// exceeded, rate limited) are counted in an obs.Registry along with live
// in-flight/queue-depth gauges and a queue-wait histogram, so /stats and
// /metrics can show exactly what the admission layer is doing.
//
// The zero Controller (nil) admits everything and imposes no deadlines —
// instrumentation-free pass-through for tests and embedded uses.
package admit

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/obs"
)

// Class partitions requests by cost so one kind of traffic cannot starve
// the others: Read covers cheap O(1)/O(k) reads (stats, metrics, neighbor
// lookups), Query covers full-corpus similarity scans, Write covers
// mutating uploads and graph builds.
type Class int

const (
	Read Class = iota
	Query
	Write
	numClasses
)

// String returns the metric-name segment for the class.
func (c Class) String() string {
	switch c {
	case Read:
		return "read"
	case Query:
		return "query"
	case Write:
		return "write"
	}
	return "unknown"
}

// Outcome is the admission decision for one request.
type Outcome int

const (
	// Admitted: a slot was free; the request runs now.
	Admitted Outcome = iota
	// AdmittedAfterWait: the request queued and then got a slot.
	AdmittedAfterWait
	// Shed: rejected without running — the queue was full or the adaptive
	// shed signal was active. Maps to 503.
	Shed
	// DeadlineExceeded: the request's deadline expired while it was
	// queued. Maps to 503; the work never started.
	DeadlineExceeded
	// RateLimited: the global token bucket was empty. Maps to 429.
	RateLimited
)

// Result describes one admission decision.
type Result struct {
	Outcome Outcome
	// Wait is the time spent queued (zero on the fast path).
	Wait time.Duration
	// RetryAfter is the server's estimate of when retrying is worthwhile.
	// Meaningful only for rejected outcomes; always ≥ 1s.
	RetryAfter time.Duration
}

// Rejected reports whether the decision denies the request.
func (r Result) Rejected() bool {
	return r.Outcome == Shed || r.Outcome == DeadlineExceeded || r.Outcome == RateLimited
}

// ClassConfig sizes one class's limiter.
type ClassConfig struct {
	// MaxInflight is the number of requests of this class that may execute
	// concurrently. Must be ≥ 1.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for a slot beyond
	// MaxInflight. 0 disables queueing: a busy class sheds immediately.
	MaxQueue int
	// Timeout is the default per-request deadline the service applies to
	// this class (clients may lower it via X-Request-Timeout, never raise
	// it). 0 means no deadline.
	Timeout time.Duration
	// ShedWait is the adaptive-shed threshold: once the decayed average
	// queue wait exceeds it, arrivals that cannot run immediately are shed
	// instead of queued. 0 derives Timeout/4 (or disables the signal when
	// Timeout is 0 too).
	ShedWait time.Duration
}

func (c ClassConfig) shedWait() time.Duration {
	if c.ShedWait > 0 {
		return c.ShedWait
	}
	return c.Timeout / 4
}

// Config configures a Controller.
type Config struct {
	Read, Query, Write ClassConfig
	// Rate is the global token-bucket refill rate in requests per second
	// across all admitted classes. 0 disables rate limiting.
	Rate float64
	// Burst is the bucket capacity; 0 derives max(Rate, 1).
	Burst float64
}

// DefaultConfig returns the production defaults: queries bounded near the
// hardware parallelism (a full-corpus scan already uses every core, so
// more concurrent scans only add queueing inside the kernel), generous
// read and write limits, no global rate limit.
func DefaultConfig() Config {
	procs := runtime.GOMAXPROCS(0)
	queries := 2 * procs
	if queries < 4 {
		queries = 4
	}
	return Config{
		Read:  ClassConfig{MaxInflight: 256, MaxQueue: 512, Timeout: 5 * time.Second},
		Query: ClassConfig{MaxInflight: queries, MaxQueue: 4 * queries, Timeout: 10 * time.Second},
		Write: ClassConfig{MaxInflight: 64, MaxQueue: 256, Timeout: 5 * time.Second},
	}
}

// Metric name fragments; the full names are "admit.<class>.<suffix>".
const (
	metricAdmitted    = "admitted.total"
	metricQueuedAdm   = "queued_admitted.total"
	metricShed        = "shed.total"
	metricDeadline    = "deadline.total"
	metricInflight    = "inflight"
	metricQueueDepth  = "queue_depth"
	metricWaitSeconds = "wait.seconds"

	// MetricRateLimited counts requests rejected by the global token
	// bucket (not per-class: the bucket is shared).
	MetricRateLimited = "admit.rate_limited.total"
)

// Controller is the admission front door: one limiter per class plus the
// shared token bucket. A nil Controller admits everything.
type Controller struct {
	classes [numClasses]*limiter
	bucket  *TokenBucket

	mRateLimited *obs.Counter
}

// NewController builds a controller from cfg, registering its metrics in
// reg (which may be nil for uninstrumented use).
func NewController(cfg Config, reg *obs.Registry) *Controller {
	c := &Controller{mRateLimited: reg.Counter(MetricRateLimited)}
	for cl, cc := range map[Class]ClassConfig{Read: cfg.Read, Query: cfg.Query, Write: cfg.Write} {
		if cc.MaxInflight < 1 {
			cc.MaxInflight = 1
		}
		c.classes[cl] = newLimiter(cl, cc, reg)
	}
	if cfg.Rate > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = math.Max(cfg.Rate, 1)
		}
		c.bucket = NewTokenBucket(cfg.Rate, burst)
	}
	return c
}

// Timeout returns the class's default request deadline (0 on nil).
func (c *Controller) Timeout(cl Class) time.Duration {
	if c == nil {
		return 0
	}
	return c.classes[cl].cfg.Timeout
}

// RetryAfter returns the class's current retry advice — what a rejection
// issued right now would carry.
func (c *Controller) RetryAfter(cl Class) time.Duration {
	if c == nil {
		return time.Second
	}
	return c.classes[cl].retryAfter()
}

// Overloaded reports whether any class is currently shedding queue-bound
// arrivals (its adaptive signal is above threshold or its queue is full).
func (c *Controller) Overloaded() bool {
	if c == nil {
		return false
	}
	for _, l := range c.classes {
		if l.overloaded() {
			return true
		}
	}
	return false
}

// Admit decides whether a request of the given class may run. When the
// result is not rejected, release is non-nil and must be called exactly
// once when the request finishes. ctx bounds the time spent queued — pass
// the request context after applying the class deadline.
func (c *Controller) Admit(ctx context.Context, cl Class) (release func(), res Result) {
	if c == nil {
		return func() {}, Result{Outcome: Admitted}
	}
	if c.bucket != nil && !c.bucket.Allow() {
		c.mRateLimited.Inc()
		return nil, Result{Outcome: RateLimited, RetryAfter: clampRetry(c.bucket.RetryAfter())}
	}
	return c.classes[cl].acquire(ctx)
}

// ClassStats is the /stats view of one class's limiter.
type ClassStats struct {
	MaxInflight      int   `json:"max_inflight"`
	MaxQueue         int   `json:"max_queue"`
	Inflight         int64 `json:"inflight"`
	Queued           int64 `json:"queued"`
	Admitted         int64 `json:"admitted"`
	QueuedAdmitted   int64 `json:"queued_admitted"`
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// Snapshot returns the per-class stats keyed by class name, plus the
// rate-limited total under "rate_limited". Nil-safe (returns nil).
func (c *Controller) Snapshot() map[string]ClassStats {
	if c == nil {
		return nil
	}
	out := make(map[string]ClassStats, numClasses)
	for cl := Class(0); cl < numClasses; cl++ {
		l := c.classes[cl]
		out[cl.String()] = ClassStats{
			MaxInflight:      l.cfg.MaxInflight,
			MaxQueue:         l.cfg.MaxQueue,
			Inflight:         l.inflight.Load(),
			Queued:           l.queued.Load(),
			Admitted:         l.mAdmitted.Value(),
			QueuedAdmitted:   l.mQueuedAdm.Value(),
			Shed:             l.mShed.Value(),
			DeadlineExceeded: l.mDeadline.Value(),
		}
	}
	return out
}

// RateLimited returns how many requests the token bucket rejected.
func (c *Controller) RateLimited() int64 {
	if c == nil {
		return 0
	}
	return c.mRateLimited.Value()
}

// limiter is one class's concurrency gate.
type limiter struct {
	cfg   ClassConfig
	slots chan struct{} // buffered MaxInflight; send = acquire

	inflight atomic.Int64
	queued   atomic.Int64

	sig waitSignal

	mAdmitted  *obs.Counter
	mQueuedAdm *obs.Counter
	mShed      *obs.Counter
	mDeadline  *obs.Counter
	gInflight  *obs.Gauge
	gQueue     *obs.Gauge
	hWait      *obs.Histogram
}

func newLimiter(cl Class, cfg ClassConfig, reg *obs.Registry) *limiter {
	prefix := "admit." + cl.String() + "."
	return &limiter{
		cfg:        cfg,
		slots:      make(chan struct{}, cfg.MaxInflight),
		sig:        waitSignal{halfLife: cfg.shedWait()},
		mAdmitted:  reg.Counter(prefix + metricAdmitted),
		mQueuedAdm: reg.Counter(prefix + metricQueuedAdm),
		mShed:      reg.Counter(prefix + metricShed),
		mDeadline:  reg.Counter(prefix + metricDeadline),
		gInflight:  reg.Gauge(prefix + metricInflight),
		gQueue:     reg.Gauge(prefix + metricQueueDepth),
		hWait:      reg.Histogram(prefix+metricWaitSeconds, obs.DefWaitBuckets),
	}
}

func (l *limiter) acquire(ctx context.Context) (func(), Result) {
	// Fast path: a free slot admits without touching the queue state.
	select {
	case l.slots <- struct{}{}:
		l.admitted()
		l.mAdmitted.Inc()
		return l.release, Result{Outcome: Admitted}
	default:
	}

	// Adaptive shed: while recent arrivals are spending more than the
	// threshold queued, queueing more work only delays the inevitable
	// rejection — fail fast instead.
	if sw := l.cfg.shedWait(); sw > 0 && l.sig.load() > sw {
		l.mShed.Inc()
		return nil, Result{Outcome: Shed, RetryAfter: l.retryAfter()}
	}

	// Bounded queue: claim a waiter slot or shed.
	for {
		q := l.queued.Load()
		if q >= int64(l.cfg.MaxQueue) {
			l.mShed.Inc()
			return nil, Result{Outcome: Shed, RetryAfter: l.retryAfter()}
		}
		if l.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	l.gQueue.Set(l.queued.Load())

	start := time.Now()
	select {
	case l.slots <- struct{}{}:
		wait := time.Since(start)
		l.unqueue(wait)
		l.admitted()
		l.mQueuedAdm.Inc()
		return l.release, Result{Outcome: AdmittedAfterWait, Wait: wait}
	case <-ctx.Done():
		wait := time.Since(start)
		l.unqueue(wait)
		l.mDeadline.Inc()
		return nil, Result{Outcome: DeadlineExceeded, Wait: wait, RetryAfter: l.retryAfter()}
	}
}

func (l *limiter) admitted() {
	l.gInflight.Set(l.inflight.Add(1))
}

func (l *limiter) unqueue(wait time.Duration) {
	l.gQueue.Set(l.queued.Add(-1))
	l.sig.observe(wait)
	l.hWait.Observe(wait.Seconds())
}

func (l *limiter) release() {
	<-l.slots
	l.gInflight.Set(l.inflight.Add(-1))
}

// retryAfter estimates when a retry is likely to be admitted: roughly the
// time for the current queue to drain at one average wait per MaxInflight
// requests, floored at the decayed average wait itself. Always in [1s, 60s]
// — an honest "come back soon" rather than a precise reservation.
func (l *limiter) retryAfter() time.Duration {
	avg := l.sig.load()
	est := avg + avg*time.Duration(l.queued.Load())/time.Duration(l.cfg.MaxInflight)
	return clampRetry(est)
}

func (l *limiter) overloaded() bool {
	if sw := l.cfg.shedWait(); sw > 0 && l.sig.load() > sw {
		return true
	}
	return l.cfg.MaxQueue > 0 && l.queued.Load() >= int64(l.cfg.MaxQueue)
}

func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > 60*time.Second {
		return 60 * time.Second
	}
	return d
}

// waitSignal is an exponentially-decayed moving average of queue waits.
// Decay is driven by wall time, not by observations: under full shed no
// new waits are observed, and a purely observation-driven average would
// stay above threshold forever, wedging the limiter in shed mode. Halving
// the value every halfLife of silence reopens the queue once pressure
// drops. Accessed only on queue paths (never the fast path), so a mutex
// is fine.
type waitSignal struct {
	halfLife time.Duration

	mu   sync.Mutex
	avg  time.Duration
	last time.Time
}

func (s *waitSignal) observe(wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayLocked(time.Now())
	// EWMA with α = 1/4: a handful of long waits trip the signal, a
	// handful of short ones clear it.
	s.avg += (wait - s.avg) / 4
}

func (s *waitSignal) load() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayLocked(time.Now())
	return s.avg
}

func (s *waitSignal) decayLocked(now time.Time) {
	if s.last.IsZero() {
		s.last = now
		return
	}
	if s.halfLife <= 0 || s.avg == 0 {
		s.last = now
		return
	}
	elapsed := now.Sub(s.last)
	if elapsed <= 0 {
		return
	}
	s.last = now
	// One halving per elapsed halfLife; fractional half-lives via the
	// float pow keep the decay smooth.
	s.avg = time.Duration(float64(s.avg) * math.Pow(0.5, float64(elapsed)/float64(s.halfLife)))
}

// TokenBucket is a standard token-bucket rate limiter: tokens refill at
// rate per second up to burst; each admitted request spends one. Safe for
// concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test seam; time.Now outside tests
}

// NewTokenBucket creates a bucket refilling at rate tokens/second with the
// given capacity, starting full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

func (b *TokenBucket) refillLocked(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
}

// Allow spends one token if available.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter returns the time until the next token becomes available
// (zero when one is available now).
func (b *TokenBucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
