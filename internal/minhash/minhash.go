// Package minhash implements the b-bit minwise hashing baseline (Li &
// König, CACM 2011) that the paper compares GoldFinger against (§3.2.1,
// Table 3). A profile is summarized by the minimum of each of t
// permutations of the item universe; keeping only the lowest b bits of each
// minimum yields a compact binary sketch from which Jaccard's index can be
// estimated.
//
// The paper's implementation — and the reason MinHash loses Table 3 —
// materializes the permutations over the entire item universe, making
// preparation proportional to t·m. That mode is reproduced here
// (PermutationExplicit) alongside the cheaper hash-simulated permutations
// (PermutationHashed) used by modern sketch libraries.
package minhash

import (
	"fmt"
	"math"
	"math/rand"

	"goldfinger/internal/hashing"
	"goldfinger/internal/profile"
)

// PermutationMode selects how min-wise permutations are realized.
type PermutationMode int

const (
	// PermutationExplicit materializes t full permutations of the item
	// universe (the paper's costly preparation).
	PermutationExplicit PermutationMode = iota
	// PermutationHashed simulates permutations with universal hashing.
	PermutationHashed
)

// Config parametrizes the sketch. The paper's Table 3 uses 256 permutations
// of b = 4 bits each ("the best trade-off between time and KNN quality").
type Config struct {
	Permutations int
	Bits         int // bits kept per minimum, 1..16
	Mode         PermutationMode
	Seed         int64
}

// DefaultConfig is the paper's b-bit minwise configuration.
func DefaultConfig() Config {
	return Config{Permutations: 256, Bits: 4, Mode: PermutationExplicit}
}

// Sketcher builds b-bit minwise sketches for a fixed item universe.
type Sketcher struct {
	cfg      Config
	numItems int
	perms    [][]uint32 // explicit mode: perms[t][item]
	seeds    []uint64   // hashed mode: one mixer seed per simulated permutation
}

// NewSketcher prepares the permutations for an item universe of numItems.
// In explicit mode this is the expensive step Table 3 measures.
func NewSketcher(cfg Config, numItems int) (*Sketcher, error) {
	if cfg.Permutations <= 0 {
		return nil, fmt.Errorf("minhash: need at least one permutation, got %d", cfg.Permutations)
	}
	if cfg.Bits < 1 || cfg.Bits > 16 {
		return nil, fmt.Errorf("minhash: bits per minimum must be in [1,16], got %d", cfg.Bits)
	}
	if numItems <= 0 {
		return nil, fmt.Errorf("minhash: item universe must be positive, got %d", numItems)
	}
	s := &Sketcher{cfg: cfg, numItems: numItems}
	switch cfg.Mode {
	case PermutationExplicit:
		rng := rand.New(rand.NewSource(cfg.Seed))
		s.perms = make([][]uint32, cfg.Permutations)
		for t := range s.perms {
			perm := make([]uint32, numItems)
			for i := range perm {
				perm[i] = uint32(i)
			}
			rng.Shuffle(numItems, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			s.perms[t] = perm
		}
	case PermutationHashed:
		// A 2-universal family is not min-wise independent enough (linear
		// functions bias which element attains the minimum); a strong
		// 64-bit mixer behaves like a random function, which is.
		s.seeds = make([]uint64, cfg.Permutations)
		for t := range s.seeds {
			s.seeds[t] = uint64(cfg.Seed) + uint64(t)*0x2545f4914f6cdd1d
		}
	default:
		return nil, fmt.Errorf("minhash: unknown permutation mode %d", cfg.Mode)
	}
	return s, nil
}

// Sketch is a b-bit minwise summary: Permutations values of Bits bits each,
// packed little-endian into words.
type Sketch struct {
	words []uint64
	empty bool
}

// SizeBytes returns the packed size of the sketch payload.
func (sk Sketch) SizeBytes() int { return len(sk.words) * 8 }

// Sketch summarizes one profile.
func (s *Sketcher) Sketch(p profile.Profile) Sketch {
	t := s.cfg.Permutations
	bits := s.cfg.Bits
	sk := Sketch{words: make([]uint64, (t*bits+63)/64), empty: p.Len() == 0}
	if sk.empty {
		return sk
	}
	for ti := 0; ti < t; ti++ {
		minV := ^uint64(0)
		for _, it := range p {
			if v := s.rank(ti, it); v < minV {
				minV = v
			}
		}
		low := minV & ((1 << uint(bits)) - 1)
		pos := ti * bits
		sk.words[pos>>6] |= low << uint(pos&63)
		if spill := pos&63 + bits - 64; spill > 0 {
			sk.words[pos>>6+1] |= low >> uint(bits-spill)
		}
	}
	return sk
}

// SketchAll summarizes every profile (the per-dataset preparation the paper
// times in Table 3, after NewSketcher's permutation setup).
func (s *Sketcher) SketchAll(profiles []profile.Profile) []Sketch {
	out := make([]Sketch, len(profiles))
	for i, p := range profiles {
		out[i] = s.Sketch(p)
	}
	return out
}

// rank returns the position of item under the ti-th (real or simulated)
// permutation.
func (s *Sketcher) rank(ti int, item profile.ItemID) uint64 {
	if s.perms != nil {
		return uint64(s.perms[ti][int(item)%s.numItems])
	}
	return hashing.Seeded(uint64(uint32(item)), s.seeds[ti])
}

// value extracts the ti-th b-bit minimum of a sketch.
func (s *Sketcher) value(sk Sketch, ti int) uint64 {
	bits := s.cfg.Bits
	pos := ti * bits
	v := sk.words[pos>>6] >> uint(pos&63)
	if spill := pos&63 + bits - 64; spill > 0 {
		v |= sk.words[pos>>6+1] << uint(bits-spill)
	}
	return v & ((1 << uint(bits)) - 1)
}

// Jaccard estimates Jaccard's index from two sketches with the b-bit
// collision correction of Li & König: the probability that two b-bit minima
// match is J + (1−J)/2^b, inverted and clamped to [0,1].
func (s *Sketcher) Jaccard(a, b Sketch) float64 {
	if a.empty || b.empty {
		return 0
	}
	match := 0
	for ti := 0; ti < s.cfg.Permutations; ti++ {
		if s.value(a, ti) == s.value(b, ti) {
			match++
		}
	}
	p := float64(match) / float64(s.cfg.Permutations)
	c := math.Pow(2, -float64(s.cfg.Bits))
	j := (p - c) / (1 - c)
	return math.Max(0, math.Min(1, j))
}

// Provider adapts a set of sketches to the knn.Provider interface.
type Provider struct {
	Sketcher *Sketcher
	Sketches []Sketch
}

// NewProvider sketches all profiles and wraps them.
func NewProvider(s *Sketcher, profiles []profile.Profile) *Provider {
	return &Provider{Sketcher: s, Sketches: s.SketchAll(profiles)}
}

// NumUsers returns the number of users.
func (p *Provider) NumUsers() int { return len(p.Sketches) }

// Similarity estimates Jaccard between users u and v.
func (p *Provider) Similarity(u, v int) float64 {
	return p.Sketcher.Jaccard(p.Sketches[u], p.Sketches[v])
}
