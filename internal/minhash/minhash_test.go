package minhash

import (
	"math"
	"testing"

	"goldfinger/internal/profile"
)

func TestNewSketcherValidation(t *testing.T) {
	bad := []Config{
		{Permutations: 0, Bits: 4},
		{Permutations: 16, Bits: 0},
		{Permutations: 16, Bits: 17},
		{Permutations: 16, Bits: 4, Mode: PermutationMode(99)},
	}
	for _, cfg := range bad {
		if _, err := NewSketcher(cfg, 100); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewSketcher(DefaultConfig(), 0); err == nil {
		t.Error("numItems=0 accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Permutations != 256 || cfg.Bits != 4 || cfg.Mode != PermutationExplicit {
		t.Errorf("DefaultConfig = %+v, want 256 permutations × 4 bits, explicit", cfg)
	}
}

func TestSketchPackingRoundTrip(t *testing.T) {
	// value() must read back exactly what Sketch packed, across word
	// boundaries, for several bit widths.
	for _, bits := range []int{1, 3, 4, 7, 8, 13, 16} {
		cfg := Config{Permutations: 64, Bits: bits, Mode: PermutationHashed, Seed: 5}
		s, err := NewSketcher(cfg, 1000)
		if err != nil {
			t.Fatal(err)
		}
		p := profile.New(1, 50, 999, 123, 7)
		sk := s.Sketch(p)
		// Recompute the raw minima and compare with the unpacked values.
		for ti := 0; ti < cfg.Permutations; ti++ {
			minV := ^uint64(0)
			for _, it := range p {
				if v := s.rank(ti, it); v < minV {
					minV = v
				}
			}
			want := minV & ((1 << uint(bits)) - 1)
			if got := s.value(sk, ti); got != want {
				t.Fatalf("bits=%d perm=%d: value = %d, want %d", bits, ti, got, want)
			}
		}
	}
}

func TestJaccardIdentical(t *testing.T) {
	for _, mode := range []PermutationMode{PermutationExplicit, PermutationHashed} {
		s, err := NewSketcher(Config{Permutations: 128, Bits: 8, Mode: mode, Seed: 1}, 500)
		if err != nil {
			t.Fatal(err)
		}
		p := profile.New(1, 2, 3, 4, 5)
		sk := s.Sketch(p)
		if got := s.Jaccard(sk, sk); got != 1 {
			t.Errorf("mode %d: Ĵ(P,P) = %g, want 1", mode, got)
		}
	}
}

func TestJaccardEmpty(t *testing.T) {
	s, _ := NewSketcher(Config{Permutations: 32, Bits: 4, Mode: PermutationHashed}, 100)
	e := s.Sketch(nil)
	p := s.Sketch(profile.New(1))
	if s.Jaccard(e, e) != 0 || s.Jaccard(e, p) != 0 {
		t.Error("empty sketches must estimate 0")
	}
}

func TestJaccardAccuracy(t *testing.T) {
	// J = 1/3 by construction; 512 permutations should estimate within
	// ±0.08 in both modes.
	var items1, items2 []profile.ItemID
	for i := 0; i < 100; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+50))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)
	for _, mode := range []PermutationMode{PermutationExplicit, PermutationHashed} {
		s, err := NewSketcher(Config{Permutations: 512, Bits: 8, Mode: mode, Seed: 3}, 200)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Jaccard(s.Sketch(p1), s.Sketch(p2))
		if math.Abs(got-truth) > 0.08 {
			t.Errorf("mode %d: Ĵ = %g, want ≈%g", mode, got, truth)
		}
	}
}

func TestJaccardDisjoint(t *testing.T) {
	s, _ := NewSketcher(Config{Permutations: 256, Bits: 8, Mode: PermutationHashed, Seed: 4}, 10000)
	p1 := profile.New(1, 2, 3, 4, 5)
	p2 := profile.New(9001, 9002, 9003, 9004, 9005)
	if got := s.Jaccard(s.Sketch(p1), s.Sketch(p2)); got > 0.15 {
		t.Errorf("Ĵ(disjoint) = %g, want ≈0", got)
	}
}

func TestFewerBitsNeedCorrection(t *testing.T) {
	// With b=1, half of all non-matching minima still collide; the
	// corrected estimator must stay roughly unbiased.
	var items1, items2 []profile.ItemID
	for i := 0; i < 60; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+30))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)
	var sum float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		s, _ := NewSketcher(Config{Permutations: 512, Bits: 1, Mode: PermutationHashed, Seed: seed}, 200)
		sum += s.Jaccard(s.Sketch(p1), s.Sketch(p2))
	}
	mean := sum / trials
	if math.Abs(mean-truth) > 0.1 {
		t.Errorf("b=1 corrected mean = %g, want ≈%g", mean, truth)
	}
}

func TestProvider(t *testing.T) {
	s, _ := NewSketcher(Config{Permutations: 128, Bits: 8, Mode: PermutationHashed, Seed: 6}, 100)
	ps := []profile.Profile{
		profile.New(1, 2, 3),
		profile.New(1, 2, 3),
		profile.New(50, 60, 70),
	}
	prov := NewProvider(s, ps)
	if prov.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", prov.NumUsers())
	}
	if prov.Similarity(0, 1) != 1 {
		t.Errorf("identical profiles: sim = %g", prov.Similarity(0, 1))
	}
	if prov.Similarity(0, 2) > 0.2 {
		t.Errorf("disjoint profiles: sim = %g", prov.Similarity(0, 2))
	}
}

func TestSketchSizeBytes(t *testing.T) {
	s, _ := NewSketcher(Config{Permutations: 256, Bits: 4, Mode: PermutationHashed}, 100)
	sk := s.Sketch(profile.New(1))
	if got := sk.SizeBytes(); got != 256*4/8 {
		t.Errorf("SizeBytes = %d, want %d", got, 256*4/8)
	}
}
