package minhash

import (
	"testing"

	"goldfinger/internal/profile"
)

func benchSketcher(b *testing.B, mode PermutationMode) *Sketcher {
	b.Helper()
	s, err := NewSketcher(Config{Permutations: 256, Bits: 4, Mode: mode, Seed: 1}, 20000)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchProfile() profile.Profile {
	items := make([]profile.ItemID, 80)
	for i := range items {
		items[i] = profile.ItemID(i * 37 % 20000)
	}
	return profile.New(items...)
}

// BenchmarkSetupExplicit is the permutation-materialization cost Table 3
// charges MinHash for.
func BenchmarkSetupExplicit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewSketcher(Config{Permutations: 256, Bits: 4, Mode: PermutationExplicit, Seed: 1}, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchExplicit(b *testing.B) {
	s := benchSketcher(b, PermutationExplicit)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		s.Sketch(p)
	}
}

func BenchmarkSketchHashed(b *testing.B) {
	s := benchSketcher(b, PermutationHashed)
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		s.Sketch(p)
	}
}

func BenchmarkJaccardBBit(b *testing.B) {
	s := benchSketcher(b, PermutationHashed)
	sk1 := s.Sketch(benchProfile())
	sk2 := s.Sketch(benchProfile())
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Jaccard(sk1, sk2)
	}
	_ = sink
}
