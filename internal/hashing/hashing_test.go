package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneAtATimeKnownVectors(t *testing.T) {
	// Published reference values for Jenkins' one-at-a-time hash.
	cases := []struct {
		in   string
		want uint32
	}{
		{"a", 0xca2e9442},
		{"The quick brown fox jumps over the lazy dog", 0x519e91f5},
	}
	for _, c := range cases {
		if got := OneAtATime([]byte(c.in)); got != c.want {
			t.Errorf("OneAtATime(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestOneAtATimeDeterministic(t *testing.T) {
	in := []byte("determinism")
	if OneAtATime(in) != OneAtATime(in) {
		t.Error("OneAtATime not deterministic")
	}
}

func TestLookup3EmptyIsSeedDependent(t *testing.T) {
	if got := Lookup3(nil, 0); got != 0xdeadbeef {
		t.Errorf("Lookup3(nil, 0) = %#x, want 0xdeadbeef", got)
	}
	if Lookup3(nil, 1) == Lookup3(nil, 0) {
		t.Error("seed must change the hash of the empty string")
	}
}

func TestLookup3KnownVectors(t *testing.T) {
	// Self-test values from Bob Jenkins' lookup3.c driver.
	in := []byte("Four score and seven years ago")
	cases := []struct {
		seed uint32
		want uint32
	}{
		{0, 0x17770551},
		{1, 0xcd628161},
	}
	for _, c := range cases {
		if got := Lookup3(in, c.seed); got != c.want {
			t.Errorf("Lookup3(%q, %d) = %#x, want %#x", in, c.seed, got, c.want)
		}
	}
}

func TestLookup3AllLengths(t *testing.T) {
	// Exercise every tail length 0..40 and check stability plus byte
	// sensitivity at each position.
	base := make([]byte, 40)
	for i := range base {
		base[i] = byte(i * 7)
	}
	for n := 0; n <= len(base); n++ {
		h1 := Lookup3(base[:n], 42)
		h2 := Lookup3(append([]byte(nil), base[:n]...), 42)
		if h1 != h2 {
			t.Fatalf("len %d: unstable hash", n)
		}
		for i := 0; i < n; i++ {
			mut := append([]byte(nil), base[:n]...)
			mut[i] ^= 0x01
			if Lookup3(mut, 42) == h1 {
				t.Fatalf("len %d: flipping byte %d did not change hash", n, i)
			}
		}
	}
}

func TestLookup3SeedSensitivity(t *testing.T) {
	in := []byte("seed sensitivity")
	seen := map[uint32]bool{}
	for seed := uint32(0); seed < 64; seed++ {
		seen[Lookup3(in, seed)] = true
	}
	if len(seen) < 64 {
		t.Errorf("64 seeds produced only %d distinct hashes", len(seen))
	}
}

func TestMix64KnownVector(t *testing.T) {
	// First output of splitmix64 with seed 0: Mix64 applied to the golden
	// gamma. Reference value from the xoshiro/splitmix64 test suite.
	if got := Mix64(0x9e3779b97f4a7c15); got != 0xe220a8397b1dcdaf {
		t.Errorf("Mix64(gamma) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestMix64Injective(t *testing.T) {
	seen := make(map[uint64]uint64, 200000)
	for i := uint64(0); i < 200000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	r := rand.New(rand.NewSource(7))
	totalBits, totalFlips := 0, 0
	for trial := 0; trial < 200; trial++ {
		x := r.Uint64()
		bit := uint(r.Intn(64))
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		for ; d != 0; d &= d - 1 {
			totalFlips++
		}
		totalBits += 64
	}
	frac := float64(totalFlips) / float64(totalBits)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("avalanche fraction = %.3f, want ≈0.5", frac)
	}
}

func TestSeededDistinctSeeds(t *testing.T) {
	x := uint64(12345)
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 1000; seed++ {
		seen[Seeded(x, seed)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("1000 seeds produced %d distinct values", len(seen))
	}
}

func TestUniversalHashBelowPrime(t *testing.T) {
	f := func(seed, x uint64) bool {
		return NewUniversal(seed).Hash(x) < mersennePrime61
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniversalHashMatchesBigIntModel(t *testing.T) {
	// Validate the Mersenne-fold arithmetic against direct modular math
	// on values small enough that a*x fits the reduction path we trust.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		u := NewUniversal(r.Uint64())
		x := r.Uint64()
		got := u.Hash(x)
		want := mulMod(u.a, x%mersennePrime61)
		want = (want + u.b) % mersennePrime61
		if got != want {
			t.Fatalf("Hash(a=%d,b=%d,x=%d) = %d, want %d", u.a, u.b, x, got, want)
		}
	}
}

// mulMod computes a*b mod 2^61-1 by splitting b into 30-bit halves, an
// independent (slow) implementation used as the oracle.
func mulMod(a, b uint64) uint64 {
	const p = mersennePrime61
	lo := b & ((1 << 30) - 1)
	hi := b >> 30
	// a*b = a*hi*2^30 + a*lo, computed with repeated reduction.
	r := mulModSmall(a, hi)
	for i := 0; i < 30; i++ {
		r = r * 2 % p
	}
	return (r + mulModSmall(a, lo)) % p
}

// mulModSmall multiplies a (<2^61) by s (<2^31) mod p using 128-bit-safe
// decomposition of a.
func mulModSmall(a, s uint64) uint64 {
	const p = mersennePrime61
	aLo := a & ((1 << 31) - 1)
	aHi := a >> 31
	// a*s = aHi*2^31*s + aLo*s, each product < 2^61 or reducible.
	r := aHi % p * (s % p) % p
	for i := 0; i < 31; i++ {
		r = r * 2 % p
	}
	return (r + aLo*s%p) % p
}

func TestUniversalBucketRange(t *testing.T) {
	u := NewUniversal(99)
	for _, m := range []int{1, 2, 7, 64, 1024} {
		for x := uint64(0); x < 1000; x++ {
			b := u.Bucket(x, m)
			if b < 0 || b >= m {
				t.Fatalf("Bucket(%d, %d) = %d out of range", x, m, b)
			}
		}
	}
}

func TestUniversalBucketPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bucket(x, 0) did not panic")
		}
	}()
	NewUniversal(1).Bucket(5, 0)
}

func TestUniversalBucketRoughlyUniform(t *testing.T) {
	const m, n = 16, 64000
	u := NewUniversal(5)
	counts := make([]int, m)
	for x := uint64(0); x < n; x++ {
		counts[u.Bucket(x, m)]++
	}
	expect := float64(n) / m
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.15*expect {
			t.Errorf("bucket %d has %d hits, expected ≈%.0f", b, c, expect)
		}
	}
}

func TestUniversalDifferentSeedsDisagree(t *testing.T) {
	u1, u2 := NewUniversal(1), NewUniversal(2)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if u1.Hash(x) == u2.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("independent functions agreed on %d of 1000 inputs", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
