package hashing

import (
	"fmt"
	"testing"
)

func BenchmarkOneAtATime(b *testing.B) {
	data := []byte("a typical short key for fingerprinting")
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += OneAtATime(data)
	}
	_ = sink
}

func BenchmarkLookup3(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				sink += Lookup3(data, 42)
			}
			_ = sink
		})
	}
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}

func BenchmarkSeeded(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Seeded(uint64(i), 7)
	}
	_ = sink
}

func BenchmarkUniversalHash(b *testing.B) {
	u := NewUniversal(3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += u.Hash(uint64(i))
	}
	_ = sink
}
