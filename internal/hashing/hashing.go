// Package hashing collects the hash functions the GoldFinger paper relies
// on: Bob Jenkins' hashes (the paper fingerprints items with "Jenkins' hash
// function"), a 64-bit integer finalizer used to derive independent seeded
// hash functions cheaply, and a classic universal family ((a·x+b) mod p)
// used as the min-wise permutations of MinHash and LSH.
package hashing

// OneAtATime is Bob Jenkins' one-at-a-time hash over a byte string. It is
// the simplest of Jenkins' functions and is adequate for fingerprinting
// short keys.
func OneAtATime(data []byte) uint32 {
	var h uint32
	for _, b := range data {
		h += uint32(b)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

// rot is a left rotation, the primitive of Jenkins' lookup3.
func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// Lookup3 is Bob Jenkins' 2006 lookup3 hash (hashlittle) of a byte string
// with the given seed. It processes 12-byte blocks with his mix/final
// schedule and is the "Jenkins hash" most implementations mean.
func Lookup3(data []byte, seed uint32) uint32 {
	a := 0xdeadbeef + uint32(len(data)) + seed
	b, c := a, a

	for len(data) > 12 {
		a += le32(data[0:4])
		b += le32(data[4:8])
		c += le32(data[8:12])
		// mix(a,b,c)
		a -= c
		a ^= rot(c, 4)
		c += b
		b -= a
		b ^= rot(a, 6)
		a += c
		c -= b
		c ^= rot(b, 8)
		b += a
		a -= c
		a ^= rot(c, 16)
		c += b
		b -= a
		b ^= rot(a, 19)
		a += c
		c -= b
		c ^= rot(b, 4)
		b += a
		data = data[12:]
	}

	// Tail: the C original switches on the remaining 0..12 bytes with
	// deliberate fallthrough; accumulating each 4-byte lane little-endian
	// from whatever bytes remain is equivalent.
	n := len(data)
	if n == 0 {
		return c
	}
	a += lePartial(data[0:minInt(4, n)])
	if n > 4 {
		b += lePartial(data[4:minInt(8, n)])
	}
	if n > 8 {
		c += lePartial(data[8:n])
	}

	// final(a,b,c)
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return c
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// lePartial reads 1 to 4 bytes little-endian, zero-padding the high bytes.
func lePartial(b []byte) uint32 {
	var v uint32
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Mix64 is a SplitMix64-style finalizer: a fast bijective mixer on 64-bit
// integers with strong avalanche behaviour. Combined with a seed it yields
// an inexpensive family of independent hash functions on integer item IDs.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seeded returns Mix64 applied to x perturbed by seed; distinct seeds give
// (empirically) independent hash functions.
func Seeded(x, seed uint64) uint64 {
	return Mix64(x + 0x9e3779b97f4a7c15*(seed+1))
}

// mersennePrime61 = 2^61 - 1, prime; arithmetic mod p can be done without
// big integers because products of 61-bit values fit in 128 bits (via
// math/bits) — here we keep operands below p and use the classic
// fold-the-high-bits reduction.
const mersennePrime61 = (1 << 61) - 1

// Universal is a hash function from the Carter–Wegman universal family
// h(x) = ((a·x + b) mod p) with p = 2^61−1. The family is 2-independent,
// which is the property min-wise permutation sketches (MinHash, LSH) need.
type Universal struct {
	a, b uint64
}

// NewUniversal derives a Universal function from a seed; the multiplier a is
// guaranteed non-zero.
func NewUniversal(seed uint64) Universal {
	a := Seeded(1, seed) % mersennePrime61
	if a == 0 {
		a = 1
	}
	b := Seeded(2, seed) % mersennePrime61
	return Universal{a: a, b: b}
}

// Hash evaluates h(x) in [0, 2^61-1).
func (u Universal) Hash(x uint64) uint64 {
	// Compute a*x mod (2^61-1) using 128-bit multiply + Mersenne folding.
	hi, lo := mul64(u.a, x%mersennePrime61)
	// a*x = hi*2^64 + lo. 2^64 ≡ 2^3 (mod 2^61-1), so fold twice.
	r := (lo & mersennePrime61) + (lo >> 61) + (hi << 3 & mersennePrime61) + (hi >> 58)
	r = (r & mersennePrime61) + (r >> 61)
	if r >= mersennePrime61 {
		r -= mersennePrime61
	}
	r += u.b
	if r >= mersennePrime61 {
		r -= mersennePrime61
	}
	return r
}

// Bucket maps x to [0, m). It panics if m is not positive.
func (u Universal) Bucket(x uint64, m int) int {
	if m <= 0 {
		panic("hashing: Bucket needs m > 0")
	}
	return int(u.Hash(x) % uint64(m))
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	tLo, tHi := t&mask32, t>>32
	t = aLo*bHi + tLo
	lo |= t << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}
