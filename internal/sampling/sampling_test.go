package sampling

import (
	"testing"

	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func TestPopularity(t *testing.T) {
	ps := []profile.Profile{
		profile.New(1, 2),
		profile.New(2, 3),
		profile.New(2),
	}
	pop := Popularity(ps)
	if pop[1] != 1 || pop[2] != 3 || pop[3] != 1 {
		t.Errorf("popularity = %v", pop)
	}
}

func TestTruncateValidation(t *testing.T) {
	if _, err := TruncateLeastPopular(nil, 0); err == nil {
		t.Error("maxSize=0 accepted")
	}
}

func TestTruncateKeepsLeastPopular(t *testing.T) {
	// Item 9 is in every profile (most popular); truncation to 2 items
	// must drop it first.
	ps := []profile.Profile{
		profile.New(1, 2, 9),
		profile.New(3, 4, 9),
		profile.New(5, 6, 9),
	}
	tr, err := TruncateLeastPopular(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr {
		if p.Len() != 2 {
			t.Errorf("profile %d length = %d, want 2", i, p.Len())
		}
		if p.Contains(9) {
			t.Errorf("profile %d kept the popular item 9: %v", i, p)
		}
	}
}

func TestTruncateShortProfilesUntouched(t *testing.T) {
	ps := []profile.Profile{profile.New(1, 2)}
	tr, err := TruncateLeastPopular(ps, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr[0].Len() != 2 {
		t.Errorf("short profile modified: %v", tr[0])
	}
}

func TestTruncateDeterministic(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 21)
	a, _ := TruncateLeastPopular(d.Profiles, 20)
	b, _ := TruncateLeastPopular(d.Profiles, 20)
	for i := range a {
		if profile.IntersectionSize(a[i], b[i]) != a[i].Len() || a[i].Len() != b[i].Len() {
			t.Fatal("truncation not deterministic")
		}
	}
}

// TestBaselineComparison reproduces the §6 comparison: the truncation
// baseline approximates the exact graph, but for the same representation
// budget GoldFinger does not do worse — and the truncated similarity still
// costs time proportional to the (truncated) profile size, which is the
// structural reason the paper prefers fingerprints.
func TestBaselineComparison(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 22)
	exactP := knn.NewExplicitProvider(d.Profiles)
	const k = 10
	exact, _ := knn.BruteForce(exactP, k, knn.Options{})

	trP, err := NewProvider(d.Profiles, 30)
	if err != nil {
		t.Fatal(err)
	}
	gTr, _ := knn.BruteForce(trP, k, knn.Options{})
	qTr := knn.Quality(gTr, exact, exactP)
	if qTr < 0.6 {
		t.Errorf("truncation baseline quality = %.3f, implausibly low", qTr)
	}
	if qTr >= 1.0+1e-9 {
		t.Errorf("truncation baseline quality = %.3f above exact", qTr)
	}
}
