// Package sampling implements the profile-truncation competitor the paper
// discusses in related work (§6, Kermarrec, Ruas & Taïani, Euro-Par 2018):
// compact each profile by keeping only its least popular items — popular
// items carry little similarity signal ("nobody cares if you liked Star
// Wars") — and compute exact Jaccard on the truncated profiles. The paper
// reports that this speeds KNN construction up, but less than GoldFinger;
// this package exists to reproduce that comparison.
package sampling

import (
	"fmt"
	"sort"

	"goldfinger/internal/profile"
)

// Popularity returns the global item degree (number of profiles containing
// each item).
func Popularity(profiles []profile.Profile) map[profile.ItemID]int {
	pop := map[profile.ItemID]int{}
	for _, p := range profiles {
		for _, it := range p {
			pop[it]++
		}
	}
	return pop
}

// TruncateLeastPopular keeps at most maxSize items per profile, preferring
// the least popular ones (ties broken by item ID for determinism).
func TruncateLeastPopular(profiles []profile.Profile, maxSize int) ([]profile.Profile, error) {
	if maxSize <= 0 {
		return nil, fmt.Errorf("sampling: maxSize must be positive, got %d", maxSize)
	}
	pop := Popularity(profiles)
	out := make([]profile.Profile, len(profiles))
	for i, p := range profiles {
		if p.Len() <= maxSize {
			out[i] = p
			continue
		}
		items := append([]profile.ItemID(nil), p...)
		sort.Slice(items, func(a, b int) bool {
			if pop[items[a]] != pop[items[b]] {
				return pop[items[a]] < pop[items[b]]
			}
			return items[a] < items[b]
		})
		out[i] = profile.New(items[:maxSize]...)
	}
	return out, nil
}

// Provider computes exact Jaccard over truncated profiles — the
// least-popular-items baseline as a knn.Provider.
type Provider struct {
	Truncated []profile.Profile
}

// NewProvider truncates profiles to maxSize least-popular items each.
func NewProvider(profiles []profile.Profile, maxSize int) (*Provider, error) {
	tr, err := TruncateLeastPopular(profiles, maxSize)
	if err != nil {
		return nil, err
	}
	return &Provider{Truncated: tr}, nil
}

// NumUsers returns the number of users.
func (p *Provider) NumUsers() int { return len(p.Truncated) }

// Similarity returns Jaccard's index of the truncated profiles.
func (p *Provider) Similarity(u, v int) float64 {
	return profile.Jaccard(p.Truncated[u], p.Truncated[v])
}
