// Package recommend implements the paper's case study (§4.3): item
// recommendation on top of a KNN graph. Each user u is recommended the N
// items with the highest weighted-average score
//
//	score(u, i) = Σ_{v ∈ knn(u)} r(v, i)·sim(u, v) / Σ_{v ∈ knn(u)} sim(u, v)
//
// among items rated by u's neighbors that u has not rated, and quality is
// measured as recall against positive ratings hidden in the test fold.
package recommend

import (
	"fmt"
	"sort"

	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

// DefaultN is the number of recommendations per user in the paper (§4.3).
const DefaultN = 30

// Recommendation is one scored item.
type Recommendation struct {
	Item  profile.ItemID
	Score float64
}

// ForUser returns up to n recommendations for user u, derived from its KNN
// neighborhood in g over the train dataset. The similarities stored in the
// graph's edges are used as weights — for a GoldFinger graph these are the
// SHF estimates, exactly as a GoldFinger deployment would have to.
func ForUser(train *dataset.Dataset, g *knn.Graph, u, n int) []Recommendation {
	type agg struct {
		weighted float64
	}
	scores := map[profile.ItemID]*agg{}
	var simSum float64
	for _, nb := range g.Neighbors[u] {
		if nb.Sim <= 0 {
			continue
		}
		simSum += nb.Sim
		v := int(nb.ID)
		prof := train.Profiles[v]
		values := train.Values[v]
		for i, it := range prof {
			if train.Profiles[u].Contains(it) {
				continue // u already knows this item
			}
			a := scores[it]
			if a == nil {
				a = &agg{}
				scores[it] = a
			}
			a.weighted += float64(values[i]) * nb.Sim
		}
	}
	if simSum == 0 || len(scores) == 0 {
		return nil
	}

	out := make([]Recommendation, 0, len(scores))
	for it, a := range scores {
		out = append(out, Recommendation{Item: it, Score: a.weighted / simSum})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item // deterministic ties
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Recall evaluates n-item recommendations for every user against the hidden
// test positives: the number of successful recommendations (recommended
// items the user positively rated in the test fold) divided by the total
// number of hidden positives — the paper's recall metric.
func Recall(train *dataset.Dataset, test []profile.Profile, g *knn.Graph, n int) (float64, error) {
	if len(test) != train.NumUsers() || g.NumUsers() != train.NumUsers() {
		return 0, fmt.Errorf("recommend: train (%d users), test (%d) and graph (%d) disagree",
			train.NumUsers(), len(test), g.NumUsers())
	}
	hits, hidden := 0, 0
	for u := range test {
		hidden += test[u].Len()
		if test[u].Len() == 0 {
			continue
		}
		for _, rec := range ForUser(train, g, u, n) {
			if test[u].Contains(rec.Item) {
				hits++
			}
		}
	}
	if hidden == 0 {
		return 0, nil
	}
	return float64(hits) / float64(hidden), nil
}

// CrossValidate runs nfolds-fold cross-validation of the full
// pipeline: split, build a KNN graph on each train fold with buildGraph,
// recommend, and average the recall over folds — the paper's protocol
// (5-fold, averaged).
func CrossValidate(d *dataset.Dataset, nfolds int, seed int64, n int,
	buildGraph func(train *dataset.Dataset) *knn.Graph) (float64, error) {

	folds, err := d.Split(nfolds, seed)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, fold := range folds {
		g := buildGraph(fold.Train)
		r, err := Recall(fold.Train, fold.Test, g, n)
		if err != nil {
			return 0, err
		}
		sum += r
	}
	return sum / float64(nfolds), nil
}
