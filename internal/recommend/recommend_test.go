package recommend

import (
	"math"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

// tinyTrain builds a 3-user dataset where user 0's neighbors are 1 and 2.
//
//	u0 rated {1}, u1 rated {1:5, 2:4}, u2 rated {2:5, 3:4}
func tinyTrain() *dataset.Dataset {
	return &dataset.Dataset{
		Name: "tiny",
		Profiles: []profile.Profile{
			profile.New(1),
			profile.New(1, 2),
			profile.New(2, 3),
		},
		Values: [][]float32{
			{5},
			{5, 4},
			{5, 4},
		},
		NumItems: 4,
	}
}

func tinyGraph() *knn.Graph {
	return &knn.Graph{K: 2, Neighbors: [][]knn.Neighbor{
		{{ID: 1, Sim: 0.5}, {ID: 2, Sim: 0.25}},
		{{ID: 0, Sim: 0.5}, {ID: 2, Sim: 0.33}},
		{{ID: 1, Sim: 0.33}, {ID: 0, Sim: 0.25}},
	}}
}

func TestForUserScores(t *testing.T) {
	train := tinyTrain()
	recs := ForUser(train, tinyGraph(), 0, 10)
	// Candidates for u0: item 2 (from u1 value 4, sim .5; from u2 value 5,
	// sim .25) and item 3 (from u2 value 4, sim .25). Item 1 excluded (u0
	// has it).
	// score(2) = (4·.5 + 5·.25)/.75 = 3.25/.75; score(3) = (4·.25)/.75.
	if len(recs) != 2 {
		t.Fatalf("got %d recommendations: %v", len(recs), recs)
	}
	if recs[0].Item != 2 || recs[1].Item != 3 {
		t.Fatalf("order = %v, want item 2 then 3", recs)
	}
	if math.Abs(recs[0].Score-3.25/0.75) > 1e-12 {
		t.Errorf("score(2) = %g, want %g", recs[0].Score, 3.25/0.75)
	}
	if math.Abs(recs[1].Score-1.0/0.75) > 1e-12 {
		t.Errorf("score(3) = %g, want %g", recs[1].Score, 1.0/0.75)
	}
}

func TestForUserRespectsN(t *testing.T) {
	recs := ForUser(tinyTrain(), tinyGraph(), 0, 1)
	if len(recs) != 1 || recs[0].Item != 2 {
		t.Errorf("top-1 = %v, want item 2", recs)
	}
}

func TestForUserNoNeighbors(t *testing.T) {
	g := &knn.Graph{K: 2, Neighbors: [][]knn.Neighbor{{}, {}, {}}}
	if recs := ForUser(tinyTrain(), g, 0, 5); recs != nil {
		t.Errorf("no neighbors should give no recommendations, got %v", recs)
	}
}

func TestForUserSkipsNonPositiveSims(t *testing.T) {
	g := &knn.Graph{K: 2, Neighbors: [][]knn.Neighbor{
		{{ID: 1, Sim: 0}},
		{}, {},
	}}
	if recs := ForUser(tinyTrain(), g, 0, 5); recs != nil {
		t.Errorf("zero-sim neighbor contributed: %v", recs)
	}
}

func TestRecall(t *testing.T) {
	train := tinyTrain()
	g := tinyGraph()
	// u0's top recommendation is item 2; hide {2} for u0, nothing else.
	test := []profile.Profile{profile.New(2), nil, nil}
	r, err := Recall(train, test, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("recall = %g, want 1", r)
	}
	// Hidden item that is never recommended → recall 0.
	test = []profile.Profile{profile.New(3), nil, nil}
	r, err = Recall(train, test, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("recall = %g, want 0", r)
	}
}

func TestRecallValidation(t *testing.T) {
	if _, err := Recall(tinyTrain(), nil, tinyGraph(), 5); err == nil {
		t.Error("mismatched test length accepted")
	}
	short := &knn.Graph{K: 1, Neighbors: [][]knn.Neighbor{{}}}
	if _, err := Recall(tinyTrain(), make([]profile.Profile, 3), short, 5); err == nil {
		t.Error("mismatched graph accepted")
	}
}

func TestRecallEmptyTest(t *testing.T) {
	r, err := Recall(tinyTrain(), make([]profile.Profile, 3), tinyGraph(), 5)
	if err != nil || r != 0 {
		t.Errorf("recall with empty test = %g, %v; want 0, nil", r, err)
	}
}

// TestCrossValidateNativeVsGoldFinger reproduces Fig. 8's claim in
// miniature: the recall of GoldFinger-built graphs stays close to native.
func TestCrossValidateNativeVsGoldFinger(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.04, 13)
	const k, n = 10, 10

	native, err := CrossValidate(d, 5, 1, n, func(train *dataset.Dataset) *knn.Graph {
		g, _ := knn.BruteForce(knn.NewExplicitProvider(train.Profiles), k, knn.Options{})
		return g
	})
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.MustScheme(1024, 7)
	golfi, err := CrossValidate(d, 5, 1, n, func(train *dataset.Dataset) *knn.Graph {
		g, _ := knn.BruteForce(knn.NewSHFProvider(scheme, train.Profiles), k, knn.Options{})
		return g
	})
	if err != nil {
		t.Fatal(err)
	}

	if native <= 0 {
		t.Fatalf("native recall = %g, expected positive signal", native)
	}
	if golfi < native*0.7 {
		t.Errorf("GoldFinger recall %.4f fell far below native %.4f", golfi, native)
	}
}

func TestCrossValidatePropagatesSplitError(t *testing.T) {
	d := tinyTrain()
	if _, err := CrossValidate(d, 1, 0, 5, nil); err == nil {
		t.Error("nfolds=1 accepted")
	}
}
