package dataset

import (
	"math"
	"testing"

	"goldfinger/internal/profile"
)

func TestPresetsCoverTable2(t *testing.T) {
	ps := Presets()
	if len(ps) != 6 {
		t.Fatalf("got %d presets, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Users <= 0 || p.Items <= 0 || p.MeanProfile < float64(p.MinProfile) {
			t.Errorf("preset %s has inconsistent shape: %+v", p.Name, p)
		}
		if p.ZipfS <= 1 {
			t.Errorf("preset %s: ZipfS must be > 1 for rand.NewZipf", p.Name)
		}
	}
	for _, want := range []string{"ml1M", "ml10M", "ml20M", "AM", "DBLP", "GW"} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("DBLP")
	if err != nil || p.Name != "DBLP" {
		t.Errorf("PresetByName(DBLP) = %+v, %v", p, err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	const scale = 0.05
	d := Generate(ML1M, scale, 1)
	wantUsers := int(math.Round(float64(ML1M.Users) * scale))
	if d.NumUsers() != wantUsers {
		t.Errorf("users = %d, want %d", d.NumUsers(), wantUsers)
	}
	wantItems := int(math.Round(float64(ML1M.Items) * math.Sqrt(scale)))
	if d.NumItems != wantItems {
		t.Errorf("items = %d, want %d (√scale item scaling)", d.NumItems, wantItems)
	}
	for u, p := range d.Profiles {
		if p.Len() == 0 {
			t.Fatalf("user %d has empty profile", u)
		}
		for _, it := range p {
			if it < 0 || int(it) >= d.NumItems {
				t.Fatalf("user %d has out-of-universe item %d", u, it)
			}
		}
		if len(d.Values[u]) != p.Len() {
			t.Fatalf("user %d: values misaligned", u)
		}
		for _, v := range d.Values[u] {
			if v <= 3 {
				t.Fatalf("user %d has non-positive rating %g in binarized data", u, v)
			}
		}
	}
}

func TestGenerateMeanProfileSize(t *testing.T) {
	d := Generate(ML1M, 0.1, 2)
	s := d.ComputeStats()
	// Exponential tail around the target mean: allow 20% tolerance.
	if s.MeanProfile < ML1M.MeanProfile*0.8 || s.MeanProfile > ML1M.MeanProfile*1.2 {
		t.Errorf("mean profile = %.1f, want ≈%.1f", s.MeanProfile, ML1M.MeanProfile)
	}
	if minLen := minProfileLen(d); minLen < ML1M.MinProfile {
		t.Errorf("min profile length = %d, want ≥ %d", minLen, ML1M.MinProfile)
	}
}

func minProfileLen(d *Dataset) int {
	m := math.MaxInt
	for _, p := range d.Profiles {
		if p.Len() < m {
			m = p.Len()
		}
	}
	return m
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DBLP, 0.02, 99)
	b := Generate(DBLP, 0.02, 99)
	if a.NumUsers() != b.NumUsers() {
		t.Fatal("same seed, different user counts")
	}
	for u := range a.Profiles {
		if profile.IntersectionSize(a.Profiles[u], b.Profiles[u]) != a.Profiles[u].Len() {
			t.Fatal("same seed produced different profiles")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(ML1M, 0.02, 1)
	b := Generate(ML1M, 0.02, 2)
	same := 0
	for u := range a.Profiles {
		if profile.Jaccard(a.Profiles[u], b.Profiles[u]) == 1 {
			same++
		}
	}
	if same > a.NumUsers()/10 {
		t.Errorf("%d/%d identical profiles across seeds", same, a.NumUsers())
	}
}

func TestGenerateProfilesHaveNoDuplicates(t *testing.T) {
	d := Generate(Gowalla, 0.02, 5)
	for u, p := range d.Profiles {
		for i := 1; i < p.Len(); i++ {
			if p[i] <= p[i-1] {
				t.Fatalf("user %d profile not strictly increasing at %d", u, i)
			}
		}
	}
}

func TestGenerateCommunityStructure(t *testing.T) {
	// Users sharing a community must on average be more similar than
	// random pairs; this is the property that gives the greedy KNN
	// algorithms something to converge on.
	d := Generate(ML1M, 0.1, 3)
	n := d.NumUsers()
	sampled := 0
	var bestSum, randSum float64
	var randCount int
	for u := 0; u < n && sampled < 50; u += 11 {
		best := 0.0
		for v := 0; v < n; v += 7 {
			if u == v {
				continue
			}
			j := profile.Jaccard(d.Profiles[u], d.Profiles[v])
			if j > best {
				best = j
			}
			randSum += j
			randCount++
		}
		bestSum += best
		sampled++
	}
	if sampled == 0 || randCount == 0 {
		t.Skip("dataset too small")
	}
	meanBest := bestSum / float64(sampled)
	meanRand := randSum / float64(randCount)
	if meanRand == 0 {
		t.Fatal("degenerate similarities: random pairs all disjoint")
	}
	// The best neighbour must be clearly more similar than a random user,
	// otherwise the greedy KNN algorithms have nothing to converge on.
	if meanBest < 1.5*meanRand {
		t.Errorf("weak community structure: best ≈ %.4f vs random ≈ %.4f", meanBest, meanRand)
	}
}

func TestGeneratePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(scale=0) did not panic")
		}
	}()
	Generate(ML1M, 0, 1)
}

func TestGenerateRatingsRoundTrip(t *testing.T) {
	ratings := GenerateRatings(ML1M, 0.02, 9)
	if len(ratings) == 0 {
		t.Fatal("no ratings generated")
	}
	neg := 0
	for _, r := range ratings {
		if r.Value <= 3 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("GenerateRatings produced no sub-threshold ratings")
	}
	d := FromRatings("ml1M", ratings, Options{})
	if d.NumUsers() == 0 {
		t.Fatal("pipeline dropped every user")
	}
	s := d.ComputeStats()
	if s.MeanProfile < ML1M.MeanProfile*0.6 {
		t.Errorf("round-trip mean profile %.1f too far below target %.1f", s.MeanProfile, ML1M.MeanProfile)
	}
}
