package dataset

import (
	"strings"
	"testing"
)

func TestParseMovieLens(t *testing.T) {
	in := "1::10::5::978300760\n1::20::3::978302109\n\n2::10::4::978301968\n"
	ratings, err := ParseMovieLens(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ratings) != 3 {
		t.Fatalf("got %d ratings, want 3", len(ratings))
	}
	r := ratings[0]
	if r.User != 1 || r.Item != 10 || r.Value != 5 {
		t.Errorf("first rating = %+v", r)
	}
}

func TestParseMovieLensNoTimestamp(t *testing.T) {
	ratings, err := ParseMovieLens(strings.NewReader("7::8::4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ratings) != 1 || ratings[0].Value != 4.5 {
		t.Errorf("ratings = %+v", ratings)
	}
}

func TestParseMovieLensErrors(t *testing.T) {
	cases := []string{
		"1::2\n",      // too few fields
		"x::2::3\n",   // bad user
		"1::y::3\n",   // bad item
		"1::2::zzz\n", // bad rating
	}
	for _, in := range cases {
		if _, err := ParseMovieLens(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestParseCSVWithHeader(t *testing.T) {
	in := "userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n1,306,3.5,1147868817\n"
	ratings, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ratings) != 2 {
		t.Fatalf("got %d ratings, want 2", len(ratings))
	}
	if ratings[1].Value != 3.5 {
		t.Errorf("second rating value = %g", ratings[1].Value)
	}
}

func TestParseCSVHeaderOnlyFirstLine(t *testing.T) {
	in := "1,2,5\nbad,3,4\n"
	if _, err := ParseCSV(strings.NewReader(in)); err == nil {
		t.Error("non-numeric user on line 2 accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	in := "# DBLP co-authorship\n0\t1\n1 2\n3 3\n"
	ratings, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Two edges (self-loop dropped) → 4 ratings.
	if len(ratings) != 4 {
		t.Fatalf("got %d ratings, want 4", len(ratings))
	}
	for _, r := range ratings {
		if r.Value != 5 {
			t.Errorf("edge rating value = %g, want 5", r.Value)
		}
	}
	// Symmetry: 0→1 and 1→0 both present.
	found := map[[2]int32]bool{}
	for _, r := range ratings {
		found[[2]int32{r.User, int32(r.Item)}] = true
	}
	if !found[[2]int32{0, 1}] || !found[[2]int32{1, 0}] {
		t.Error("edge 0-1 not symmetric")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestParseEdgeListPipelineMatchesPaperTreatment(t *testing.T) {
	// A triangle of co-authors: every author has the two others in their
	// profile after preparation (MinRatings disabled for the tiny case).
	in := "0 1\n0 2\n1 2\n"
	ratings, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := FromRatings("tri", ratings, Options{MinRatings: -1})
	if d.NumUsers() != 3 {
		t.Fatalf("users = %d, want 3", d.NumUsers())
	}
	for u, p := range d.Profiles {
		if p.Len() != 2 {
			t.Errorf("author %d profile = %v, want 2 co-authors", u, p)
		}
	}
}
