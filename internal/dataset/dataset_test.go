package dataset

import (
	"math"
	"testing"

	"goldfinger/internal/profile"
)

func ratingsFixture() []Rating {
	// Two qualifying users (≥3 ratings with MinRatings=3) and one that
	// gets filtered out.
	return []Rating{
		{User: 10, Item: 1, Value: 5},
		{User: 10, Item: 2, Value: 2},
		{User: 10, Item: 3, Value: 4},
		{User: 10, Item: 4, Value: 3}, // not > 3: binarized away
		{User: 20, Item: 2, Value: 5},
		{User: 20, Item: 3, Value: 5},
		{User: 20, Item: 5, Value: 1},
		{User: 30, Item: 1, Value: 5}, // only one rating: filtered
	}
}

func TestFromRatingsPipeline(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{MinRatings: 3})
	if d.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d, want 2 (user 30 filtered)", d.NumUsers())
	}
	// User 10 → positives {1, 3}; user 20 → positives {2, 3}.
	if got := d.Profiles[0]; got.Len() != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("user 10 profile = %v, want [1 3]", got)
	}
	if got := d.Profiles[1]; got.Len() != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("user 20 profile = %v, want [2 3]", got)
	}
	if d.NumItems != 6 {
		t.Errorf("NumItems = %d, want 6 (max item 5 + 1)", d.NumItems)
	}
	if d.NumRatings() != 4 {
		t.Errorf("NumRatings = %d, want 4", d.NumRatings())
	}
}

func TestFromRatingsValuesAligned(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{MinRatings: 3})
	v, ok := d.ValueOf(0, 3)
	if !ok || v != 4 {
		t.Errorf("ValueOf(0, 3) = %v, %v; want 4, true", v, ok)
	}
	if _, ok := d.ValueOf(0, 2); ok {
		t.Error("ValueOf(0, 2) found a binarized-away rating")
	}
	for u := range d.Profiles {
		if len(d.Values[u]) != d.Profiles[u].Len() {
			t.Fatalf("user %d: values (%d) misaligned with profile (%d)",
				u, len(d.Values[u]), d.Profiles[u].Len())
		}
	}
}

func TestFromRatingsDefaultMin20(t *testing.T) {
	// A user with 19 ratings must be dropped under the paper's default.
	var ratings []Rating
	for i := 0; i < 19; i++ {
		ratings = append(ratings, Rating{User: 1, Item: profile.ItemID(i), Value: 5})
	}
	if d := FromRatings("x", ratings, Options{}); d.NumUsers() != 0 {
		t.Errorf("19-rating user kept with default options")
	}
	ratings = append(ratings, Rating{User: 1, Item: 19, Value: 5})
	if d := FromRatings("x", ratings, Options{}); d.NumUsers() != 1 {
		t.Errorf("20-rating user dropped with default options")
	}
}

func TestFromRatingsMinRatingsDisabled(t *testing.T) {
	ratings := []Rating{{User: 1, Item: 1, Value: 5}}
	if d := FromRatings("x", ratings, Options{MinRatings: -1}); d.NumUsers() != 1 {
		t.Error("MinRatings<0 should disable the filter")
	}
}

func TestFromRatingsCustomThreshold(t *testing.T) {
	ratings := []Rating{
		{User: 1, Item: 1, Value: 3},
		{User: 1, Item: 2, Value: 5},
	}
	d := FromRatings("x", ratings, Options{MinRatings: -1, PositiveThreshold: 2.5})
	if d.NumRatings() != 2 {
		t.Errorf("threshold 2.5 kept %d ratings, want 2", d.NumRatings())
	}
}

func TestFromRatingsDuplicateItem(t *testing.T) {
	ratings := []Rating{
		{User: 1, Item: 7, Value: 5},
		{User: 1, Item: 7, Value: 4},
		{User: 1, Item: 8, Value: 5},
	}
	d := FromRatings("x", ratings, Options{MinRatings: -1})
	if d.Profiles[0].Len() != 2 {
		t.Errorf("duplicate item kept twice: %v", d.Profiles[0])
	}
}

func TestComputeStats(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{MinRatings: 3})
	s := d.ComputeStats()
	if s.Users != 2 || s.Ratings != 4 {
		t.Errorf("stats users=%d ratings=%d, want 2, 4", s.Users, s.Ratings)
	}
	if s.Items != 3 { // distinct positive items: 1, 2, 3
		t.Errorf("stats items = %d, want 3", s.Items)
	}
	if math.Abs(s.MeanProfile-2) > 1e-12 {
		t.Errorf("mean profile = %g, want 2", s.MeanProfile)
	}
	if math.Abs(s.MeanItemDeg-4.0/3) > 1e-12 {
		t.Errorf("mean item degree = %g, want 4/3", s.MeanItemDeg)
	}
	wantDensity := 100 * 4.0 / (2 * 3)
	if math.Abs(s.DensityPct-wantDensity) > 1e-9 {
		t.Errorf("density = %g%%, want %g%%", s.DensityPct, wantDensity)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	d := &Dataset{Name: "empty"}
	s := d.ComputeStats()
	if s.Users != 0 || s.MeanProfile != 0 || s.DensityPct != 0 {
		t.Errorf("empty dataset stats = %+v", s)
	}
}

func TestSplitValidation(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{MinRatings: 3})
	if _, err := d.Split(1, 0); err == nil {
		t.Error("Split(1) accepted")
	}
}

func TestSplitPartitionsRatings(t *testing.T) {
	d := Generate(ML1M, 0.02, 7)
	const nfolds = 5
	folds, err := d.Split(nfolds, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != nfolds {
		t.Fatalf("got %d folds", len(folds))
	}
	for u := range d.Profiles {
		seenInTest := map[profile.ItemID]int{}
		for f, fold := range folds {
			// Train ∪ Test = full profile; Train ∩ Test = ∅.
			train, test := fold.Train.Profiles[u], fold.Test[u]
			if train.Len()+test.Len() != d.Profiles[u].Len() {
				t.Fatalf("fold %d user %d: |train|+|test| = %d, want %d",
					f, u, train.Len()+test.Len(), d.Profiles[u].Len())
			}
			if profile.IntersectionSize(train, test) != 0 {
				t.Fatalf("fold %d user %d: train and test overlap", f, u)
			}
			for _, it := range test {
				seenInTest[it]++
			}
			if len(fold.Train.Values[u]) != train.Len() {
				t.Fatalf("fold %d user %d: train values misaligned", f, u)
			}
		}
		// Every rating appears in exactly one fold's test set.
		if len(seenInTest) != d.Profiles[u].Len() {
			t.Fatalf("user %d: %d distinct test items across folds, want %d",
				u, len(seenInTest), d.Profiles[u].Len())
		}
		for it, n := range seenInTest {
			if n != 1 {
				t.Fatalf("user %d item %d in %d test folds", u, it, n)
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := Generate(ML1M, 0.01, 3)
	f1, _ := d.Split(5, 42)
	f2, _ := d.Split(5, 42)
	for u := range d.Profiles {
		if profile.IntersectionSize(f1[0].Test[u], f2[0].Test[u]) != f1[0].Test[u].Len() ||
			f1[0].Test[u].Len() != f2[0].Test[u].Len() {
			t.Fatal("same seed produced different splits")
		}
	}
}
