package dataset

import (
	"strings"
	"testing"
)

// FuzzParseMovieLens asserts the parser never panics and that accepted
// inputs yield structurally sound ratings.
func FuzzParseMovieLens(f *testing.F) {
	f.Add("1::10::5::978300760\n")
	f.Add("1::10::5\n\n2::3::4.5::0\n")
	f.Add("x::y::z\n")
	f.Add("::::\n")
	f.Add("1::2\n")
	f.Fuzz(func(t *testing.T, input string) {
		ratings, err := ParseMovieLens(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range ratings {
			_ = r.User
			_ = r.Item
		}
		// Accepted input must survive the full preparation pipeline.
		d := FromRatings("fuzz", ratings, Options{MinRatings: -1})
		for u, p := range d.Profiles {
			if len(d.Values[u]) != p.Len() {
				t.Fatalf("values misaligned for user %d", u)
			}
			for i := 1; i < p.Len(); i++ {
				if p[i] <= p[i-1] {
					t.Fatalf("profile not strictly sorted")
				}
			}
		}
	})
}

// FuzzParseEdgeList asserts the edge-list parser never panics and always
// produces symmetric 5-valued ratings.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("0\t1\n1 2\n")
	f.Add("# comment\n3 3\n")
	f.Add("a b\n")
	f.Fuzz(func(t *testing.T, input string) {
		ratings, err := ParseEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(ratings)%2 != 0 {
			t.Fatal("edge list ratings not paired")
		}
		for _, r := range ratings {
			if r.Value != 5 {
				t.Fatalf("edge rating value %g", r.Value)
			}
		}
	})
}
