package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"goldfinger/internal/profile"
)

// ParseMovieLens reads the MovieLens ratings.dat format:
//
//	userID::movieID::rating::timestamp
//
// Blank lines are skipped; the timestamp field is optional.
func ParseMovieLens(r io.Reader) ([]Rating, error) {
	return parseSeparated(r, "::", "movielens")
}

// ParseCSV reads comma-separated ratings with an optional header line:
//
//	userId,movieId,rating[,timestamp]
//
// as distributed with MovieLens 20M.
func ParseCSV(r io.Reader) ([]Rating, error) {
	return parseSeparated(r, ",", "csv")
}

func parseSeparated(r io.Reader, sep, format string) ([]Rating, error) {
	var out []Rating
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, sep)
		if len(fields) < 3 {
			return nil, fmt.Errorf("dataset: %s line %d: want at least 3 fields, got %d", format, lineNo, len(fields))
		}
		user, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 32)
		if err != nil {
			if lineNo == 1 && format == "csv" {
				continue // header line
			}
			return nil, fmt.Errorf("dataset: %s line %d: bad user %q", format, lineNo, fields[0])
		}
		item, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad item %q", format, lineNo, fields[1])
		}
		value, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad rating %q", format, lineNo, fields[2])
		}
		out = append(out, Rating{User: int32(user), Item: profile.ItemID(item), Value: float32(value)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading %s input: %w", format, err)
	}
	return out, nil
}

// ParseEdgeList reads a SNAP-style undirected edge list ("u<TAB>v" or
// "u v", '#' comments allowed) and converts it the way the paper treats
// DBLP and Gowalla: both endpoints are users *and* items, and an edge
// (u, v) becomes u rating v with 5 and v rating u with 5.
func ParseEdgeList(r io.Reader) ([]Rating, error) {
	var out []Rating
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: edge list line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: edge list line %d: bad node %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: edge list line %d: bad node %q", lineNo, fields[1])
		}
		if u == v {
			continue // self-loops carry no similarity information
		}
		out = append(out,
			Rating{User: int32(u), Item: profile.ItemID(v), Value: 5},
			Rating{User: int32(v), Item: profile.ItemID(u), Value: 5},
		)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading edge list: %w", err)
	}
	return out, nil
}
