package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"goldfinger/internal/profile"
)

// Preset describes the shape of one of the paper's six evaluation datasets
// (Table 2). Because the original data cannot be bundled, Generate produces
// a synthetic dataset with the same user/item counts, mean profile size and
// density, Zipf-distributed item popularity and a planted community
// structure (users in the same community share a preferred item region),
// which reproduces the similarity topology that drives both estimator
// accuracy and the convergence of the greedy KNN algorithms.
type Preset struct {
	Name        string
	Users       int
	Items       int
	MeanProfile float64 // target mean |P_u| after binarization
	MinProfile  int     // paper keeps users with ≥ 20 ratings
	ZipfS       float64 // item-popularity skew (s > 1)
	RatingScale string  // documentation only, e.g. "1-5"
	// CommunityBias is the probability that a user's item is drawn from
	// their community's preferred region rather than the global pool.
	CommunityBias float64
	// UsersPerCommunity controls how many planted communities exist.
	UsersPerCommunity int
}

// The six presets mirror the paper's Table 2.
var (
	ML1M = Preset{Name: "ml1M", Users: 6038, Items: 3533, MeanProfile: 95.28,
		MinProfile: 20, ZipfS: 1.1, RatingScale: "1-5", CommunityBias: 0.55, UsersPerCommunity: 300}
	ML10M = Preset{Name: "ml10M", Users: 69816, Items: 10472, MeanProfile: 84.30,
		MinProfile: 20, ZipfS: 1.1, RatingScale: "0.5-5", CommunityBias: 0.55, UsersPerCommunity: 400}
	ML20M = Preset{Name: "ml20M", Users: 138362, Items: 22884, MeanProfile: 88.14,
		MinProfile: 20, ZipfS: 1.1, RatingScale: "0.5-5", CommunityBias: 0.55, UsersPerCommunity: 500}
	AmazonMovies = Preset{Name: "AM", Users: 57430, Items: 171356, MeanProfile: 56.82,
		MinProfile: 20, ZipfS: 1.25, RatingScale: "1-5", CommunityBias: 0.6, UsersPerCommunity: 250}
	DBLP = Preset{Name: "DBLP", Users: 18889, Items: 203030, MeanProfile: 36.67,
		MinProfile: 20, ZipfS: 1.3, RatingScale: "5", CommunityBias: 0.7, UsersPerCommunity: 150}
	Gowalla = Preset{Name: "GW", Users: 20270, Items: 135540, MeanProfile: 54.64,
		MinProfile: 20, ZipfS: 1.3, RatingScale: "5", CommunityBias: 0.65, UsersPerCommunity: 200}
)

// Presets lists the six evaluation datasets in the paper's Table 2 order.
func Presets() []Preset {
	return []Preset{ML1M, ML10M, ML20M, AmazonMovies, DBLP, Gowalla}
}

// PresetByName returns the preset with the given name (case-sensitive).
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("dataset: unknown preset %q", name)
}

// Generate synthesizes a dataset with the preset's shape, scaled by scale
// (1.0 = the paper's full size; the default experiment scale is smaller so
// the whole suite runs on a laptop). Users scale linearly; the item
// universe scales by √scale — mean profile sizes are fixed, so shrinking
// items as fast as users would make the scaled dataset far denser than the
// original, while the square root keeps density (and with it the LSH
// bucketing costs and SHF collision rates) much closer to the published
// shape. It panics on a non-positive scale.
func Generate(p Preset, scale float64, seed int64) *Dataset {
	if scale <= 0 {
		panic(fmt.Sprintf("dataset: scale must be positive, got %g", scale))
	}
	users := maxInt(40, int(math.Round(float64(p.Users)*scale)))
	items := maxInt(150, int(math.Round(float64(p.Items)*math.Sqrt(scale))))
	rng := rand.New(rand.NewSource(seed))

	nComm := maxInt(2, users/maxInt(1, p.UsersPerCommunity))
	regionLen := maxInt(30, items/nComm)

	zipfGlobal := rand.NewZipf(rng, p.ZipfS, 8, uint64(items-1))
	zipfLocal := rand.NewZipf(rng, p.ZipfS, 4, uint64(regionLen-1))

	meanExtra := math.Max(0, p.MeanProfile-float64(p.MinProfile))

	d := &Dataset{
		Name:     p.Name,
		Profiles: make([]profile.Profile, 0, users),
		Values:   make([][]float32, 0, users),
		NumItems: items,
	}

	seen := make(map[profile.ItemID]struct{}, 256)
	for u := 0; u < users; u++ {
		comm := rng.Intn(nComm)
		regionStart := comm * regionLen % items

		size := p.MinProfile + int(rng.ExpFloat64()*meanExtra)
		if size > items*2/3 {
			size = items * 2 / 3
		}
		if size < 1 {
			size = 1
		}

		clear(seen)
		items1 := make([]profile.ItemID, 0, size)
		attempts := 0
		for len(items1) < size && attempts < size*40 {
			attempts++
			var it profile.ItemID
			if rng.Float64() < p.CommunityBias {
				it = profile.ItemID((regionStart + int(zipfLocal.Uint64())) % items)
			} else {
				it = profile.ItemID(zipfGlobal.Uint64())
			}
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items1 = append(items1, it)
		}

		prof := profile.New(items1...)
		values := make([]float32, len(prof))
		for i := range values {
			values[i] = 4 + float32(rng.Intn(3))*0.5 // 4, 4.5 or 5: positive
		}
		d.Profiles = append(d.Profiles, prof)
		d.Values = append(d.Values, values)
	}
	return d
}

// GenerateRatings produces the same synthetic data as Generate but as a raw
// rating stream (including sub-threshold negative ratings), for exercising
// the preparation pipeline end-to-end (Table 3 measures preparation time).
// Roughly a third of the emitted ratings are ≤ 3 and will be binarized away.
func GenerateRatings(p Preset, scale float64, seed int64) []Rating {
	d := Generate(p, scale, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	ratings := make([]Rating, 0, d.NumRatings()*3/2)
	for u, prof := range d.Profiles {
		for i, it := range prof {
			ratings = append(ratings, Rating{User: int32(u), Item: it, Value: d.Values[u][i]})
		}
		// Negative ratings on other items, ~half the positive count.
		for n := len(prof) / 2; n > 0; n-- {
			it := profile.ItemID(rng.Intn(d.NumItems))
			ratings = append(ratings, Rating{User: int32(u), Item: it, Value: float32(1 + rng.Intn(3))})
		}
	}
	rng.Shuffle(len(ratings), func(i, j int) { ratings[i], ratings[j] = ratings[j], ratings[i] })
	return ratings
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
