// Package dataset implements the bipartite user–item rating datasets the
// paper evaluates on, together with the exact preparation pipeline of its
// experimental setup (§3.1): keep users with at least 20 ratings, binarize
// by keeping only items rated strictly above 3, and split ratings 5-fold
// for cross-validation. The package parses the original file formats
// (MovieLens, CSV, SNAP edge lists) and, because the public datasets cannot
// be bundled, provides synthetic generators calibrated to each dataset's
// published shape (see synthetic.go and DESIGN.md §3).
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"goldfinger/internal/profile"
)

// Rating is one (user, item, value) triple.
type Rating struct {
	User  int32
	Item  profile.ItemID
	Value float32
}

// Options controls dataset preparation. The zero value selects the paper's
// setup: threshold 3 (keep ratings > 3) and a 20-rating minimum per user.
type Options struct {
	// PositiveThreshold keeps ratings strictly greater than this value
	// when binarizing. 0 means the paper's default of 3.
	PositiveThreshold float64
	// MinRatings drops users with fewer raw ratings (counted before
	// binarization, as in the paper). 0 means the default of 20.
	// Negative disables the filter.
	MinRatings int
}

func (o Options) threshold() float64 {
	if o.PositiveThreshold == 0 {
		return 3
	}
	return o.PositiveThreshold
}

func (o Options) minRatings() int {
	switch {
	case o.MinRatings < 0:
		return 0
	case o.MinRatings == 0:
		return 20
	default:
		return o.MinRatings
	}
}

// Dataset is a prepared (binarized) dataset: one positive-item profile per
// user, with the rating values kept aligned for the recommender.
type Dataset struct {
	Name string
	// Profiles[u] is the sorted set of items user u rated positively.
	Profiles []profile.Profile
	// Values[u][i] is the rating value of Profiles[u][i].
	Values [][]float32
	// NumItems is the size of the item universe (max item ID + 1).
	NumItems int
}

// FromRatings prepares a Dataset from raw ratings per the paper's pipeline.
// User IDs are remapped to a compact [0, n) range; item IDs are preserved.
func FromRatings(name string, ratings []Rating, opts Options) *Dataset {
	minR := opts.minRatings()
	thr := opts.threshold()

	counts := map[int32]int{}
	// The item universe I includes every rated item, positive or not: the
	// privacy bounds of §2.5 are stated in terms of m = |I|.
	maxItem := profile.ItemID(-1)
	for _, r := range ratings {
		counts[r.User]++
		if r.Item > maxItem {
			maxItem = r.Item
		}
	}

	type ui struct {
		item  profile.ItemID
		value float32
	}
	byUser := map[int32][]ui{}
	for _, r := range ratings {
		if counts[r.User] < minR {
			continue
		}
		if float64(r.Value) <= thr {
			continue
		}
		byUser[r.User] = append(byUser[r.User], ui{r.Item, r.Value})
	}

	users := make([]int32, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	d := &Dataset{
		Name:     name,
		Profiles: make([]profile.Profile, 0, len(users)),
		Values:   make([][]float32, 0, len(users)),
		NumItems: int(maxItem) + 1,
	}
	for _, u := range users {
		entries := byUser[u]
		sort.Slice(entries, func(i, j int) bool { return entries[i].item < entries[j].item })
		items := make([]profile.ItemID, 0, len(entries))
		values := make([]float32, 0, len(entries))
		for i, e := range entries {
			if i > 0 && e.item == entries[i-1].item {
				continue // duplicate rating of the same item: keep the first
			}
			items = append(items, e.item)
			values = append(values, e.value)
		}
		if len(items) == 0 {
			continue
		}
		d.Profiles = append(d.Profiles, profile.FromSorted(items))
		d.Values = append(d.Values, values)
	}
	return d
}

// NumUsers returns the number of users kept after preparation.
func (d *Dataset) NumUsers() int { return len(d.Profiles) }

// NumRatings returns the total number of positive ratings.
func (d *Dataset) NumRatings() int {
	n := 0
	for _, p := range d.Profiles {
		n += len(p)
	}
	return n
}

// ValueOf returns user u's rating of item, and whether it exists.
func (d *Dataset) ValueOf(u int, item profile.ItemID) (float32, bool) {
	p := d.Profiles[u]
	i := sort.Search(len(p), func(i int) bool { return p[i] >= item })
	if i < len(p) && p[i] == item {
		return d.Values[u][i], true
	}
	return 0, false
}

// Stats is one row of the paper's Table 2.
type Stats struct {
	Name         string
	Users        int
	Items        int // distinct items actually rated positively
	Ratings      int // positive ratings
	MeanProfile  float64
	MeanItemDeg  float64
	DensityPct   float64
	ItemUniverse int // size of the item ID space (for privacy bounds)
}

// ComputeStats derives the Table 2 statistics of the dataset.
func (d *Dataset) ComputeStats() Stats {
	distinct := map[profile.ItemID]struct{}{}
	ratings := 0
	for _, p := range d.Profiles {
		ratings += len(p)
		for _, it := range p {
			distinct[it] = struct{}{}
		}
	}
	s := Stats{
		Name:         d.Name,
		Users:        len(d.Profiles),
		Items:        len(distinct),
		Ratings:      ratings,
		ItemUniverse: d.NumItems,
	}
	if s.Users > 0 {
		s.MeanProfile = float64(ratings) / float64(s.Users)
	}
	if s.Items > 0 {
		s.MeanItemDeg = float64(ratings) / float64(s.Items)
	}
	if s.Users > 0 && s.Items > 0 {
		s.DensityPct = 100 * float64(ratings) / (float64(s.Users) * float64(s.Items))
	}
	return s
}

// Fold is one train/test split of a cross-validation.
type Fold struct {
	// Train is the dataset with the test ratings removed.
	Train *Dataset
	// Test[u] holds user u's hidden positive items.
	Test []profile.Profile
}

// Split partitions the positive ratings into nfolds cross-validation folds
// (the paper uses 5). Every rating lands in exactly one fold's test set; the
// corresponding train set is the dataset minus those ratings. Users keep
// their indices across folds so KNN graphs remain comparable.
func (d *Dataset) Split(nfolds int, seed int64) ([]Fold, error) {
	if nfolds < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 folds, got %d", nfolds)
	}
	rng := rand.New(rand.NewSource(seed))

	// assign[u][i] is the fold of rating i of user u.
	assign := make([][]int8, len(d.Profiles))
	for u, p := range d.Profiles {
		assign[u] = make([]int8, len(p))
		for i := range assign[u] {
			assign[u][i] = int8(rng.Intn(nfolds))
		}
	}

	folds := make([]Fold, nfolds)
	for f := 0; f < nfolds; f++ {
		train := &Dataset{
			Name:     d.Name,
			Profiles: make([]profile.Profile, len(d.Profiles)),
			Values:   make([][]float32, len(d.Profiles)),
			NumItems: d.NumItems,
		}
		test := make([]profile.Profile, len(d.Profiles))
		for u, p := range d.Profiles {
			trItems := make([]profile.ItemID, 0, len(p))
			trValues := make([]float32, 0, len(p))
			var teItems []profile.ItemID
			for i, it := range p {
				if int(assign[u][i]) == f {
					teItems = append(teItems, it)
				} else {
					trItems = append(trItems, it)
					trValues = append(trValues, d.Values[u][i])
				}
			}
			train.Profiles[u] = profile.FromSorted(trItems)
			train.Values[u] = trValues
			test[u] = profile.FromSorted(teItems)
		}
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds, nil
}
