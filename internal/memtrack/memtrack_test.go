package memtrack

import (
	"math"
	"testing"

	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func TestExplicitModelMeanProfile(t *testing.T) {
	ps := []profile.Profile{profile.New(1, 2, 3), profile.New(4)} // mean 2
	m := ExplicitModel(ps)
	if m.BytesPerComparison != 2*2*4 {
		t.Errorf("BytesPerComparison = %g, want 16", m.BytesPerComparison)
	}
	if ExplicitModel(nil).BytesPerComparison != 0 {
		t.Error("empty profile set should cost 0 per comparison")
	}
}

func TestSHFModelIndependentOfProfiles(t *testing.T) {
	m := SHFModel(1024)
	want := 2 * (1024.0/8 + 8)
	if m.BytesPerComparison != want {
		t.Errorf("BytesPerComparison = %g, want %g", m.BytesPerComparison, want)
	}
}

func TestForRun(t *testing.T) {
	m := Model{BytesPerComparison: 100, BytesPerUpdate: 16}
	tr := m.ForRun(knn.Stats{Comparisons: 10, Updates: 3})
	if tr.LoadBytes != 1000 || tr.StoreBytes != 48 {
		t.Errorf("traffic = %+v", tr)
	}
	if tr.Loads() != 250 || tr.Stores() != 12 {
		t.Errorf("loads/stores = %d/%d", tr.Loads(), tr.Stores())
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 10); math.Abs(got-90) > 1e-12 {
		t.Errorf("Reduction = %g, want 90", got)
	}
	if Reduction(0, 10) != 0 {
		t.Error("zero native should yield 0")
	}
	if got := Reduction(100, 120); math.Abs(got+20) > 1e-12 {
		t.Errorf("Reduction with regression = %g, want -20", got)
	}
}

func TestNewRowAndString(t *testing.T) {
	r := NewRow("BruteForce", Traffic{LoadBytes: 4000, StoreBytes: 400}, Traffic{LoadBytes: 400, StoreBytes: 400})
	if r.NativeLoads != 1000 || r.GoldFingerLoads != 100 {
		t.Errorf("row loads = %d/%d", r.NativeLoads, r.GoldFingerLoads)
	}
	if math.Abs(r.LoadReductionPct-90) > 1e-9 {
		t.Errorf("load reduction = %g", r.LoadReductionPct)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestTable5Shape reproduces the direction of the paper's Table 5 finding:
// on an ml10M-shaped workload, GoldFinger cuts the modeled load traffic of
// Brute Force substantially. (The paper measures 86.9% on its Java
// implementation, whose explicit profiles carry hash-set overhead; this
// model prices our lean sorted-slice profiles, so the reduction is smaller
// but the direction and order are the same.)
func TestTable5Shape(t *testing.T) {
	d := dataset.Generate(dataset.ML10M, 0.02, 3)
	stats := knn.Stats{Comparisons: 1 << 20, Updates: 1 << 10}
	native := ExplicitModel(d.Profiles).ForRun(stats)
	golfi := SHFModel(1024).ForRun(stats)
	red := Reduction(native.Loads(), golfi.Loads())
	if red < 40 || red > 95 {
		t.Errorf("modeled load reduction = %.1f%%, expected the 40–95%% regime", red)
	}
	// Stores are dominated by updates, identical in both modes.
	if native.Stores() != golfi.Stores() {
		t.Error("store traffic should not depend on the similarity representation")
	}
}
