// Package memtrack models the memory traffic of KNN graph construction.
//
// The paper's Table 5 uses hardware performance counters (perf, L1
// loads/stores) to show that GoldFinger shrinks the memory footprint of the
// computation. Hardware counters are not portable, so this package replaces
// them with an analytic model of the bytes each similarity kernel streams:
// an explicit Jaccard merge reads both profiles once (4 bytes per item);
// an SHF comparison reads both bit arrays once (b/8 bytes each) plus the
// two cardinalities. Each neighborhood update writes one 16-byte entry.
// The native/GoldFinger *ratio* — the quantity Table 5 demonstrates — is
// preserved by construction, because both the real hardware traffic and
// this model are dominated by those streaming reads.
package memtrack

import (
	"fmt"

	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

const (
	bytesPerItem          = 4  // profile items are int32
	bytesPerCardinality   = 8  // the cached c of an SHF
	bytesPerNeighborEntry = 16 // Neighbor{int32, float64} with padding
)

// Traffic is the modeled memory traffic of one algorithm run.
type Traffic struct {
	// LoadBytes models bytes read by similarity computations.
	LoadBytes int64
	// StoreBytes models bytes written by neighborhood updates.
	StoreBytes int64
}

// Loads returns the modeled number of 4-byte L1 load operations.
func (t Traffic) Loads() int64 { return t.LoadBytes / 4 }

// Stores returns the modeled number of 4-byte L1 store operations.
func (t Traffic) Stores() int64 { return t.StoreBytes / 4 }

// Model prices one similarity comparison and one update for a given data
// representation.
type Model struct {
	// BytesPerComparison is the data streamed by one similarity kernel.
	BytesPerComparison float64
	// BytesPerUpdate is the data written by one neighborhood improvement.
	BytesPerUpdate float64
}

// ExplicitModel prices comparisons on explicit profiles: the merge reads
// both profiles, so the mean cost is twice the mean profile size.
func ExplicitModel(profiles []profile.Profile) Model {
	var total float64
	for _, p := range profiles {
		total += float64(p.Len())
	}
	mean := 0.0
	if len(profiles) > 0 {
		mean = total / float64(len(profiles))
	}
	return Model{
		BytesPerComparison: 2 * mean * bytesPerItem,
		BytesPerUpdate:     bytesPerNeighborEntry,
	}
}

// SHFModel prices comparisons on b-bit fingerprints: two bit arrays and two
// cardinalities per comparison, independent of profile size — the property
// that makes GoldFinger cache-friendly.
func SHFModel(bits int) Model {
	return Model{
		BytesPerComparison: 2 * (float64(bits)/8 + bytesPerCardinality),
		BytesPerUpdate:     bytesPerNeighborEntry,
	}
}

// ForRun converts an algorithm's run statistics into modeled traffic.
func (m Model) ForRun(stats knn.Stats) Traffic {
	return Traffic{
		LoadBytes:  int64(m.BytesPerComparison * float64(stats.Comparisons)),
		StoreBytes: int64(m.BytesPerUpdate * float64(stats.Updates)),
	}
}

// Reduction returns the percentage reduction from native to goldfinger,
// the "gain%" column of Table 5.
func Reduction(native, goldfinger int64) float64 {
	if native == 0 {
		return 0
	}
	return 100 * (1 - float64(goldfinger)/float64(native))
}

// Row is one line of the Table 5 reproduction.
type Row struct {
	Algorithm         string
	NativeLoads       int64
	GoldFingerLoads   int64
	LoadReductionPct  float64
	NativeStores      int64
	GoldFingerStores  int64
	StoreReductionPct float64
}

// NewRow assembles a Table 5 row from two modeled runs.
func NewRow(algorithm string, native, goldfinger Traffic) Row {
	return Row{
		Algorithm:         algorithm,
		NativeLoads:       native.Loads(),
		GoldFingerLoads:   goldfinger.Loads(),
		LoadReductionPct:  Reduction(native.Loads(), goldfinger.Loads()),
		NativeStores:      native.Stores(),
		GoldFingerStores:  goldfinger.Stores(),
		StoreReductionPct: Reduction(native.Stores(), goldfinger.Stores()),
	}
}

// String renders the row.
func (r Row) String() string {
	return fmt.Sprintf("%-12s loads %d → %d (%.1f%%), stores %d → %d (%.1f%%)",
		r.Algorithm, r.NativeLoads, r.GoldFingerLoads, r.LoadReductionPct,
		r.NativeStores, r.GoldFingerStores, r.StoreReductionPct)
}
