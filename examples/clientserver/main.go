// Clientserver: the §2.5 deployment end to end in one process — an
// untrusted KNN service is started in-process, clients fingerprint their
// profiles locally and upload only the SHFs, and the server builds the
// graph and answers neighborhood and top-k queries without ever seeing a
// profile.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/privacy"
	"goldfinger/internal/service"
)

func main() {
	// The untrusted server: knows the scheme parameters, never the data.
	srv, err := service.NewServer(1024)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The clients: a Gowalla-shaped population, fingerprinting locally.
	d := dataset.Generate(dataset.Gowalla, 0.01, 5)
	scheme := core.MustScheme(1024, 5)
	for i, p := range d.Profiles {
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			fmt.Println("error:", err)
			return
		}
		req, err := http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/users/u%d/fingerprint", ts.URL, i), &buf)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		resp.Body.Close()
	}
	fmt.Printf("uploaded %d fingerprints (%d bits each)\n", d.NumUsers(), 1024)

	report := privacy.Assess(d.Name, d.Profiles, d.NumItems, scheme)
	fmt.Printf("what the server cannot learn: %s\n", report)

	// Server side: build the graph from fingerprints alone.
	resp, err := http.Post(ts.URL+"/graph/build?k=5&algo=hyrec", "", nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var build service.BuildResult
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		fmt.Println("error:", err)
		return
	}
	resp.Body.Close()
	fmt.Printf("server built a %d-NN graph over %d users with %d similarity computations\n",
		build.K, build.Users, build.Comparisons)

	// A client asks for its neighborhood.
	nresp, err := http.Get(ts.URL + "/users/u0/neighbors")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var nbrs []service.NeighborJSON
	if err := json.NewDecoder(nresp.Body).Decode(&nbrs); err != nil {
		fmt.Println("error:", err)
		return
	}
	nresp.Body.Close()
	fmt.Println("u0's neighbors (by estimated Jaccard):")
	for _, nb := range nbrs {
		fmt.Printf("  %-6s Ĵ=%.3f\n", nb.User, nb.Similarity)
	}

	// An ad-hoc top-k query under a client-chosen deadline: the
	// X-Request-Timeout header lowers this request's deadline below the
	// server's per-class default. If the server is too loaded to answer
	// within it, the query comes back 503 with a Retry-After instead of
	// making the client wait — that is the admission layer's contract.
	var qbuf bytes.Buffer
	if err := core.WriteFingerprint(&qbuf, scheme.Fingerprint(d.Profiles[0])); err != nil {
		fmt.Println("error:", err)
		return
	}
	qreq, err := http.NewRequest(http.MethodPost, ts.URL+"/query?k=3", &qbuf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	qreq.Header.Set(service.HeaderRequestTimeout, "2s")
	qresp, err := http.DefaultClient.Do(qreq)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		fmt.Printf("query rejected: %d (Retry-After: %s)\n", qresp.StatusCode, qresp.Header.Get("Retry-After"))
		return
	}
	var top []service.NeighborJSON
	if err := json.NewDecoder(qresp.Body).Decode(&top); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("top-3 for an ad-hoc fingerprint (2s client deadline):")
	for _, nb := range top {
		fmt.Printf("  %-6s Ĵ=%.3f\n", nb.User, nb.Similarity)
	}
}
