// Quickstart: fingerprint two profiles, estimate their similarity, and
// build a small KNN graph with GoldFinger — the 60-second tour of the API.
package main

import (
	"fmt"
	"log"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func main() {
	// 1. Profiles are sets of item IDs (movies seen, pages visited, ...).
	alice := profile.New(1, 2, 3, 5, 8, 13, 21, 34)
	bob := profile.New(1, 2, 3, 5, 8, 14, 22, 35)

	// 2. A Scheme turns profiles into Single Hash Fingerprints: b bits,
	// one hash per item. 1024 bits is the paper's default.
	scheme, err := core.NewScheme(1024, 42)
	if err != nil {
		log.Fatal(err)
	}
	fpA := scheme.Fingerprint(alice)
	fpB := scheme.Fingerprint(bob)

	fmt.Printf("exact Jaccard:     %.3f\n", profile.Jaccard(alice, bob))
	fmt.Printf("SHF estimate:      %.3f  (from %d-bit fingerprints, cardinalities %d and %d)\n",
		core.Jaccard(fpA, fpB), fpA.NumBits(), fpA.Cardinality(), fpB.Cardinality())

	// 3. GoldFinger = any KNN algorithm + an SHF similarity provider.
	// Generate a MovieLens-1M-shaped dataset and build its KNN graph.
	d := dataset.Generate(dataset.ML1M, 0.05, 1)
	fmt.Printf("\ndataset: %d users, %d ratings\n", d.NumUsers(), d.NumRatings())

	shf := knn.NewSHFProvider(scheme, d.Profiles)
	graph, stats := knn.Hyrec(shf, 10, knn.Options{Seed: 1})
	fmt.Printf("Hyrec+GoldFinger: %d iterations, %d similarity computations (scanrate %.3f)\n",
		stats.Iterations, stats.Comparisons, stats.ScanRate(d.NumUsers()))

	// 4. Quality against the exact graph (Eq. 3 of the paper).
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, 10, knn.Options{})
	fmt.Printf("KNN quality vs exact graph: %.3f\n", knn.Quality(graph, exact, exactP))

	// 5. Every user now has its k most similar peers.
	u := 0
	fmt.Printf("\nuser %d's top neighbors:", u)
	for _, nb := range graph.Neighbors[u][:3] {
		fmt.Printf("  u%d (Ĵ=%.3f)", nb.ID, nb.Sim)
	}
	fmt.Println()
}
