// Privacy: what a curious server learns from a fingerprint — the §2.5 story
// made concrete. A user fingerprints their profile locally and uploads only
// the SHF; the server (who knows the hash function and the item catalogue)
// tries to reconstruct the profile, and the k-anonymity / ℓ-diversity
// accounting explains why it cannot.
package main

import (
	"fmt"
	"math/rand"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/privacy"
	"goldfinger/internal/profile"
)

func main() {
	// A DBLP-shaped dataset: large item universe, small profiles — the
	// regime where fingerprints obfuscate best.
	d := dataset.Generate(dataset.DBLP, 0.02, 11)
	scheme := core.MustScheme(1024, 11)

	user := 0
	p := d.Profiles[user]
	fp := scheme.Fingerprint(p)
	fmt.Printf("user %d: %d items → %d-bit SHF with %d set bits\n",
		user, p.Len(), fp.NumBits(), fp.Cardinality())

	// Theorem 2 and 3 accounting for this dataset.
	report := privacy.Assess(d.Name, d.Profiles, d.NumItems, scheme)
	fmt.Println(report)

	// Exact anonymity-set size for this specific fingerprint.
	pre := privacy.Preimages(scheme, d.NumItems)
	anon := privacy.AnonymitySet(fp, pre)
	fmt.Printf("profiles indistinguishable from user %d's: %d bits long (exact count has %d digits)\n",
		user, anon.BitLen(), len(anon.String()))
	fmt.Printf("pairwise-disjoint alternatives (ℓ-diversity lower bound): %d\n",
		privacy.DiversityLowerBound(fp, pre))

	// The attacker's best shot: most popular item per set bit.
	precision := privacy.AttackPrecision(d.Profiles, d.NumItems, scheme)
	fmt.Printf("popularity-attack precision over all users: %.1f%%\n", 100*precision)

	// Optional extension: ε-differential privacy by bit flipping (BLIP).
	rng := rand.New(rand.NewSource(11))
	noisy, err := core.Flip(fp, 2.0, rng)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	other := scheme.Fingerprint(d.Profiles[1])
	fmt.Printf("\nwith ε=2 randomized response (flip prob %.1f%%):\n", 100*core.FlipProbability(2.0))
	fmt.Printf("  raw estimate u0~u1:      %.3f\n", core.Jaccard(fp, other))
	fmt.Printf("  noisy estimate:          %.3f\n", core.Jaccard(noisy, other))
	fmt.Printf("  denoised estimate:       %.3f\n", core.DenoisedJaccard(noisy, other, 2.0))
	fmt.Printf("  exact Jaccard:           %.3f\n", profile.Jaccard(p, d.Profiles[1]))
}
