// Dedup: near-duplicate text detection with fingerprints — the
// "fingerprinting big data" idea applied outside recommendation. Documents
// are shingled into sets of hashed 3-grams, fingerprinted with SHFs, and a
// KNN graph over the fingerprints surfaces near-duplicates without ever
// comparing the documents in clear text.
package main

import (
	"fmt"
	"strings"

	"goldfinger/internal/core"
	"goldfinger/internal/hashing"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

// shingle converts text into the set of its hashed 3-word shingles — the
// classic document representation for resemblance (Broder 1997), exactly a
// "profile" in GoldFinger terms.
func shingle(text string) profile.Profile {
	words := strings.Fields(strings.ToLower(text))
	if len(words) < 3 {
		words = append(words, "", "")
	}
	var items []profile.ItemID
	for i := 0; i+3 <= len(words); i++ {
		gram := strings.Join(words[i:i+3], " ")
		items = append(items, profile.ItemID(hashing.OneAtATime([]byte(gram))&0x7fffffff))
	}
	return profile.New(items...)
}

func main() {
	docs := []struct {
		id   string
		text string
	}{
		{"press-release-v1", `GoldFinger accelerates the construction of KNN graphs by replacing
			explicit user profiles with compact binary fingerprints that are fast to compare`},
		{"press-release-v2", `GoldFinger accelerates the construction of KNN graphs by replacing
			explicit user profiles with compact binary fingerprints which are very fast to compare`},
		{"blog-post", `We built a recommender on top of a KNN graph and it was too slow, so we
			compressed every profile into a single hash fingerprint and the speedup was dramatic`},
		{"unrelated", `The weather in Rennes is mild in October with occasional rain showers
			and temperatures around fifteen degrees in the afternoon`},
		{"press-release-final", `GoldFinger speeds up the construction of KNN graphs by replacing
			explicit user profiles with compact binary fingerprints that are fast to compare`},
	}

	profiles := make([]profile.Profile, len(docs))
	for i, d := range docs {
		profiles[i] = shingle(d.text)
	}

	// Fingerprint every document: 512 bits is plenty for short texts.
	scheme := core.MustScheme(512, 2024)
	shf := knn.NewSHFProvider(scheme, profiles)

	// The 2 nearest neighbors of every document, by estimated resemblance.
	graph, _ := knn.BruteForce(shf, 2, knn.Options{})

	fmt.Println("near-duplicate report (SHF-estimated resemblance):")
	const threshold = 0.5
	for i, d := range docs {
		for _, nb := range graph.Neighbors[i] {
			if nb.Sim < threshold {
				continue
			}
			exact := profile.Jaccard(profiles[i], profiles[nb.ID])
			fmt.Printf("  %-20s ≈ %-20s  Ĵ=%.2f (exact %.2f)\n", d.id, docs[nb.ID].id, nb.Sim, exact)
		}
	}

	fmt.Println("\npairwise estimates:")
	for i := range docs {
		for j := i + 1; j < len(docs); j++ {
			est := shf.Similarity(i, j)
			fmt.Printf("  %-20s vs %-20s  Ĵ=%.2f\n", docs[i].id, docs[j].id, est)
		}
	}
}
