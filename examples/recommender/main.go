// Recommender: the paper's case study (§4.3) end to end — build KNN graphs
// natively and with GoldFinger on a MovieLens-shaped dataset, recommend 30
// items per user, and compare recall under 5-fold cross-validation.
package main

import (
	"fmt"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/recommend"
)

func main() {
	const (
		k     = 30
		scale = 0.05
	)
	d := dataset.Generate(dataset.ML1M, scale, 7)
	stats := d.ComputeStats()
	fmt.Printf("dataset %s: %d users, %d rated items, %d positive ratings\n",
		stats.Name, stats.Users, stats.Items, stats.Ratings)

	scheme := core.MustScheme(1024, 7)

	type mode struct {
		name  string
		build func(train *dataset.Dataset) *knn.Graph
	}
	modes := []mode{
		{"native (exact Jaccard)", func(train *dataset.Dataset) *knn.Graph {
			g, _ := knn.Hyrec(knn.NewExplicitProvider(train.Profiles), k, knn.Options{Seed: 7})
			return g
		}},
		{"GoldFinger (1024-bit SHF)", func(train *dataset.Dataset) *knn.Graph {
			g, _ := knn.Hyrec(knn.NewSHFProvider(scheme, train.Profiles), k, knn.Options{Seed: 7})
			return g
		}},
	}

	for _, m := range modes {
		start := time.Now()
		recall, err := recommend.CrossValidate(d, 5, 7, recommend.DefaultN, m.build)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-26s recall@%d = %.4f   (5 folds in %v)\n",
			m.name, recommend.DefaultN, recall, time.Since(start).Round(time.Millisecond))
	}

	// Show one user's actual recommendations from a GoldFinger graph.
	folds, err := d.Split(5, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	train := folds[0].Train
	g, _ := knn.Hyrec(knn.NewSHFProvider(scheme, train.Profiles), k, knn.Options{Seed: 7})
	const user = 0
	fmt.Printf("\ntop-5 recommendations for user %d:\n", user)
	for _, rec := range recommend.ForUser(train, g, user, 5) {
		hidden := ""
		if folds[0].Test[user].Contains(rec.Item) {
			hidden = "  ← hidden positive!"
		}
		fmt.Printf("  item %-6d score %.3f%s\n", rec.Item, rec.Score, hidden)
	}
}
