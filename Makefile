# GoldFinger — build / test / reproduce targets.

GO ?= go

.PHONY: all build check test race cover bench experiments fuzz clean

all: build test

build:
	$(GO) build ./...

# Static analysis plus race-enabled tests of the concurrency-sensitive
# packages (the HTTP service and the KNN builders).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/service/... ./internal/knn/...

test: check
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/goldfinger all

fuzz:
	$(GO) test -fuzz=FuzzReadFingerprint -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzParseMovieLens -fuzztime=30s ./internal/dataset

clean:
	$(GO) clean ./...
	rm -f cover.out
