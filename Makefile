# GoldFinger — build / test / reproduce targets.

GO ?= go

.PHONY: all build check test race cover bench benchsmoke benchjson experiments fuzz clean

all: build test

build:
	$(GO) build ./...

# Static analysis, race-enabled tests of the concurrency-sensitive packages
# (the HTTP service and the KNN builders), and a one-iteration benchmark
# smoke so the perf-critical kernel benches can never rot unnoticed.
check: benchsmoke
	$(GO) vet ./...
	$(GO) test -race ./internal/service/... ./internal/knn/...

test: check
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration of every bitset/knn benchmark: catches benchmarks that no
# longer compile or crash, without measuring anything.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -count=1 -run='^$$' ./internal/bitset/... ./internal/knn/...

# Machine-readable before/after numbers for the packed-corpus hot paths
# (brute-force build + TopK query), written to BENCH_knn.json so the perf
# trajectory is tracked across PRs.
benchjson:
	$(GO) run ./cmd/benchknn -out BENCH_knn.json

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/goldfinger all

fuzz:
	$(GO) test -fuzz=FuzzReadFingerprint -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzParseMovieLens -fuzztime=30s ./internal/dataset

clean:
	$(GO) clean ./...
	rm -f cover.out
