# GoldFinger — build / test / reproduce targets.

GO ?= go

.PHONY: all build check test race racecheck parity crashcheck loadcheck shardcheck onlinecheck clustercheck clustershort cover bench benchsmoke benchjson benchquery benchcluster experiments fuzz fuzzshort clean

all: build test

build:
	$(GO) build ./...

# Static analysis, the full race-enabled suite, the crash-recovery
# fault-injection suite, the overload/load-shedding suite, a short fuzz
# burst over every fuzz target, and a one-iteration benchmark smoke so
# the perf-critical kernel benches can never rot unnoticed.
check: benchsmoke benchquery benchcluster racecheck crashcheck loadcheck shardcheck onlinecheck clustershort fuzzshort
	$(GO) vet ./...

test: check
	$(GO) test ./...

race: racecheck

# The whole test suite — including the cross-algorithm correctness harness
# and the HTTP cancel/timeout tests — under the race detector, with test
# order shuffled so inter-test ordering dependencies can't hide.
racecheck: parity
	$(GO) test -race -shuffle=on ./...

# The scan-vs-graph parity floor on its own: graph-navigated /query must
# hold recall@10 >= 0.9 against the exact scan at n=10k (also part of the
# ./... sweep above; kept addressable so a search change can be checked
# in isolation).
parity:
	$(GO) test -count=1 -run 'GraphScanParity' ./internal/knn

# The durability suite under the race detector: fault-injection crash
# sweeps (FaultCrash at every mutating filesystem op), torn-tail recovery,
# kill-and-restart at the service and binary level, and degraded-mode
# behavior. Run with count=1 so the crash sweeps re-execute every time.
crashcheck:
	$(GO) test -race -count=1 ./internal/durable
	$(GO) test -race -count=1 -run 'Recovery|Degraded|Compaction|Restart|TornTail|Crash|WAL' ./internal/service ./cmd/knnserver

# The overload suite under the race detector: the knnload generator
# drives an in-process hardened server past measured saturation (plus
# slow-loris and oversized-body chaos) and the tests assert graceful
# degradation — bounded accepted p99, fail-fast 429/503 shedding with
# parseable Retry-After, and no goroutine leak. count=1 so the
# saturation measurement re-runs every time.
loadcheck:
	$(GO) test -race -count=1 -skip 'TestCluster' ./cmd/knnload

# The shard-tier chaos suite under the race detector: four shard-cores
# behind the scatter-gather router with a TCP chaos proxy per shard;
# kill and slow-loris one of four mid-load (2× the healthy request
# rate) and assert 200s with X-Partial-Results: 3/4, p99 within 2× the
# healthy baseline (250ms floor for machine noise), recall@10
# proportional to the lost coverage and >= 0.70× healthy, fail-fast
# 503+Retry-After mutations to the dead shard, and breaker re-close
# within one open interval + probe tick of the shard returning. The
# measured run lands in BENCH_load.json under "shard_chaos". count=1 so
# the chaos replays every time.
shardcheck:
	$(GO) test -race -count=1 -run 'ShardChaos' ./cmd/knnload
	$(GO) test -race -count=1 -run 'RunSharded' ./cmd/knnserver

# The multi-process cluster suite under the race detector: three
# knnserver shard PROCESSES (own durable dirs, own WALs, race-built)
# behind the router; SIGKILL one at 2× load and assert zero lost acked
# mutations after WAL restart + rejoin, every outage query is 200 with
# X-Partial-Results or quorum-503, and recall@10 returns to within 1%
# of the healthy baseline; then a fresh shard joins mid-load (live
# WAL-journaled migration, dual-read window, exact-partition user
# counts) and a second scenario SIGKILLs the gaining shard mid-import
# and proves the transfer resumes with no user lost or duplicated.
# Measured runs land in BENCH_load.json under "cluster_chaos" and
# "migration". The second line re-runs the single-process migration,
# ring, membership, and delta tests that back the cluster machinery.
clustercheck:
	$(GO) test -race -count=1 -run 'TestClusterProcessKillChaos|TestClusterMigrationCrashResume' ./cmd/knnload
	$(GO) test -race -count=1 -run 'Cluster|Migration|Ring|Membership|Delta|Drift|Prober' ./internal/router ./internal/gossip ./internal/durable ./internal/service ./cmd/knnserver

# Short-mode clustercheck: the same process-kill and crash-resume
# proofs at reduced corpus scale, wired into `make check`.
clustershort:
	$(GO) test -race -count=1 -short -run 'TestClusterProcessKillChaos|TestClusterMigrationCrashResume' ./cmd/knnload
	$(GO) test -race -count=1 -run 'Cluster|Migration|Ring|Membership|Delta|Drift|Prober' ./internal/router ./internal/gossip ./internal/durable ./internal/service ./cmd/knnserver

# The online-mutation suite: the churn harness (>=10k interleaved
# insert/overwrite/delete mutations must hold quality and recall within
# epsilon of a from-scratch build) and the online-insert latency floor
# (p99 insert at n=10k). count=1 so the churn replays every time.
onlinecheck:
	$(GO) test -count=1 -run 'OnlineChurn|OnlineInsertLatency' ./internal/knn
	$(GO) test -race -count=1 -run 'Online|LiveMutation|Delete' ./internal/service

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One iteration of every bitset/knn benchmark: catches benchmarks that no
# longer compile or crash, without measuring anything.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -count=1 -run='^$$' ./internal/bitset/... ./internal/knn/...

# Machine-readable before/after numbers for the packed-corpus hot paths
# (brute-force build + TopK query), written to BENCH_knn.json so the perf
# trajectory is tracked across PRs.
benchjson:
	$(GO) run ./cmd/benchknn -out BENCH_knn.json

# A fast scan-vs-graph query bench on a small clustered corpus: exercises
# the full benchknn query path (generate, Hyrec build, both serving
# modes) in seconds, so `make check` catches a bench that no longer runs
# without paying for the n=100k measurement.
benchquery:
	$(GO) run ./cmd/benchknn -n 500 -k 5 -queries 5 -qn 4000 -out -

# The cluster-and-conquer quality smoke: the fingerprint-hash bucketed
# build must hold quality >= 0.90 and recall >= 0.60 against the exact
# brute force at n=2000 while doing strictly fewer comparisons. count=1
# so a kernel or clustering change re-runs the floor every time.
benchcluster:
	$(GO) test -count=1 -run 'ClusterBruteParity' ./internal/knn

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/goldfinger all

fuzz:
	$(GO) test -fuzz=FuzzReadFingerprint$$ -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzReadFingerprintSet -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzParseMovieLens -fuzztime=30s ./internal/dataset
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=30s ./internal/durable
	$(GO) test -fuzz=FuzzGraphDeltaReplay -fuzztime=30s ./internal/durable
	$(GO) test -fuzz=FuzzMergeTopK -fuzztime=30s ./internal/router

# 10 seconds per fuzz target — enough for the seeded corpora (codec round
# trips, the capped-prealloc set path, the ratings parser) to shake out
# regressions on every `make check` without stalling the loop.
fuzzshort:
	$(GO) test -fuzz=FuzzReadFingerprint$$ -fuzztime=10s ./internal/core
	$(GO) test -fuzz=FuzzReadFingerprintSet -fuzztime=10s ./internal/core
	$(GO) test -fuzz=FuzzParseMovieLens -fuzztime=10s ./internal/dataset
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=10s ./internal/durable
	$(GO) test -fuzz=FuzzGraphDeltaReplay -fuzztime=10s ./internal/durable
	$(GO) test -fuzz=FuzzMergeTopK -fuzztime=10s ./internal/router

clean:
	$(GO) clean ./...
	rm -f cover.out
