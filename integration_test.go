package goldfinger

// End-to-end integration tests spanning every module: the full GoldFinger
// deployment story from raw ratings to recommendations, across process
// boundaries (serialized fingerprints) and against the exact pipeline.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/privacy"
	"goldfinger/internal/profile"
	"goldfinger/internal/recommend"
	"goldfinger/internal/service"
)

// TestFullPipelineNativeVsGoldFinger drives the complete system: generate
// ratings → prepare (filter + binarize) → split 5-fold → build graphs in
// both modes with every algorithm → recommend → compare recall and quality.
func TestFullPipelineNativeVsGoldFinger(t *testing.T) {
	ratings := dataset.GenerateRatings(dataset.ML1M, 0.03, 99)
	d := dataset.FromRatings("ml1M", ratings, dataset.Options{})
	if d.NumUsers() < 50 {
		t.Fatalf("preparation left only %d users", d.NumUsers())
	}

	const k = 10
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, k, knn.Options{})
	scheme := core.MustScheme(1024, 99)
	shfP := knn.NewSHFProvider(scheme, d.Profiles)

	builders := map[string]func(p knn.Provider) *knn.Graph{
		"bruteforce": func(p knn.Provider) *knn.Graph { g, _ := knn.BruteForce(p, k, knn.Options{Seed: 99}); return g },
		"hyrec":      func(p knn.Provider) *knn.Graph { g, _ := knn.Hyrec(p, k, knn.Options{Seed: 99}); return g },
		"nndescent":  func(p knn.Provider) *knn.Graph { g, _ := knn.NNDescent(p, k, knn.Options{Seed: 99}); return g },
		"lsh": func(p knn.Provider) *knn.Graph {
			g, _ := knn.LSH(d.Profiles, p, k, knn.LSHOptions{Seed: 99})
			return g
		},
		"kiff": func(p knn.Provider) *knn.Graph {
			g, _ := knn.KIFF(d.Profiles, p, k, knn.KIFFOptions{})
			return g
		},
	}
	for name, build := range builders {
		gNat := build(exactP)
		gGF := build(shfP)
		if err := gNat.Validate(); err != nil {
			t.Errorf("%s native: %v", name, err)
		}
		if err := gGF.Validate(); err != nil {
			t.Errorf("%s goldfinger: %v", name, err)
		}
		qNat := knn.Quality(gNat, exact, exactP)
		qGF := knn.Quality(gGF, exact, exactP)
		if qGF < qNat-0.25 {
			t.Errorf("%s: GoldFinger quality %.3f fell more than 0.25 below native %.3f", name, qGF, qNat)
		}
	}
}

// TestClientServerDeployment exercises §2.5's deployment: clients
// fingerprint locally and upload serialized SHFs; the untrusted server
// builds the graph and produces recommendations without ever seeing a
// profile.
func TestClientServerDeployment(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.03, 7)
	scheme := core.MustScheme(1024, 7)

	// Client side: fingerprint and serialize.
	fps := scheme.FingerprintAllParallel(d.Profiles, 0)
	var wire bytes.Buffer
	if err := core.WriteFingerprintSet(&wire, fps); err != nil {
		t.Fatal(err)
	}

	// Server side: deserialize, verify privacy bounds, build the graph.
	received, err := core.ReadFingerprintSet(&wire)
	if err != nil {
		t.Fatal(err)
	}
	report := privacy.Assess(d.Name, d.Profiles, d.NumItems, scheme)
	if report.KAnonymityBits <= 0 {
		t.Errorf("no k-anonymity: %+v", report)
	}

	serverP := &knn.SHFProvider{Fingerprints: received}
	g, _ := knn.Hyrec(serverP, 10, knn.Options{Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// The server-built graph matches one built from the original
	// fingerprints exactly (serialization is lossless).
	local, _ := knn.Hyrec(knn.NewSHFProvider(scheme, d.Profiles), 10, knn.Options{Seed: 7})
	for u := range g.Neighbors {
		if len(g.Neighbors[u]) != len(local.Neighbors[u]) {
			t.Fatalf("user %d: neighborhood size differs across the wire", u)
		}
		for i := range g.Neighbors[u] {
			if g.Neighbors[u][i] != local.Neighbors[u][i] {
				t.Fatalf("user %d: neighbor %d differs across the wire", u, i)
			}
		}
	}
}

// TestRecommendationQualityParity is the Fig 8 claim as an integration
// invariant: over 5-fold cross-validation, GoldFinger recall stays within
// 30% of native recall on every algorithm.
func TestRecommendationQualityParity(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.04, 8)
	scheme := core.MustScheme(1024, 8)
	const k = 15

	build := func(gf bool) func(train *dataset.Dataset) *knn.Graph {
		return func(train *dataset.Dataset) *knn.Graph {
			var p knn.Provider
			if gf {
				p = knn.NewSHFProvider(scheme, train.Profiles)
			} else {
				p = knn.NewExplicitProvider(train.Profiles)
			}
			g, _ := knn.NNDescent(p, k, knn.Options{Seed: 8})
			return g
		}
	}
	native, err := recommend.CrossValidate(d, 5, 8, 20, build(false))
	if err != nil {
		t.Fatal(err)
	}
	golfi, err := recommend.CrossValidate(d, 5, 8, 20, build(true))
	if err != nil {
		t.Fatal(err)
	}
	if native <= 0 {
		t.Fatalf("native recall %g not positive", native)
	}
	if golfi < native*0.7 {
		t.Errorf("GoldFinger recall %.4f below 70%% of native %.4f", golfi, native)
	}
}

// TestEstimatorTheoremsHoldOnRealWorkload ties the analytic machinery to
// the system: for sampled user pairs of a generated dataset, the SHF
// estimate must stay within the 1%–99% band predicted by Theorem 1's
// Monte-Carlo distribution in at least 90% of cases.
func TestEstimatorTheoremsHoldOnRealWorkload(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.02, 9)
	scheme := core.MustScheme(1024, 9)
	fps := scheme.FingerprintAll(d.Profiles)

	within := 0
	total := 0
	for u := 0; u < d.NumUsers() && total < 60; u += 5 {
		for v := u + 1; v < d.NumUsers() && total < 60; v += 11 {
			inter := profile.IntersectionSize(d.Profiles[u], d.Profiles[v])
			if inter == 0 {
				continue
			}
			est := core.Jaccard(fps[u], fps[v])
			truth := profile.Jaccard(d.Profiles[u], d.Profiles[v])
			// Loose analytic band: the positive bias is bounded by the
			// collision mass; allow ±0.1 around the truth plus bias.
			if est >= truth-0.1 && est <= truth+0.15 {
				within++
			}
			total++
		}
	}
	if total == 0 {
		t.Skip("no overlapping pairs sampled")
	}
	frac := float64(within) / float64(total)
	if frac < 0.9 {
		t.Errorf("only %.0f%% of estimates within the predicted band", 100*frac)
	}
}

// TestScaleInvariantsAcrossPresets checks every preset end to end at tiny
// scale: generation, stats, fingerprinting and graph construction hold
// their invariants on all six dataset shapes.
func TestScaleInvariantsAcrossPresets(t *testing.T) {
	scheme := core.MustScheme(256, 10)
	for _, preset := range dataset.Presets() {
		d := dataset.Generate(preset, 0.01, 10)
		s := d.ComputeStats()
		if s.Users != d.NumUsers() || s.Ratings != d.NumRatings() {
			t.Errorf("%s: stats inconsistent with dataset", preset.Name)
		}
		if s.MeanProfile < float64(preset.MinProfile)*0.9 {
			t.Errorf("%s: mean profile %.1f below preset minimum", preset.Name, s.MeanProfile)
		}
		g, _ := knn.Hyrec(knn.NewSHFProvider(scheme, d.Profiles), 5, knn.Options{Seed: 10})
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", preset.Name, err)
		}
		avg := g.AvgSimilarity(knn.NewExplicitProvider(d.Profiles))
		if math.IsNaN(avg) || avg <= 0 {
			t.Errorf("%s: degenerate graph similarity %g", preset.Name, avg)
		}
	}
}

// TestServiceEpochLifecycleOverHTTP drives the deployed service end to end
// through its HTTP surface: clients upload serialized SHFs, trigger a
// build, keep uploading while the epoch is live, and observe the epoch
// contract (post-epoch users inserted into the live graph and served
// immediately, epoch advance on rebuild) — the §2.5 deployment under
// churn rather than one-shot.
func TestServiceEpochLifecycleOverHTTP(t *testing.T) {
	d := dataset.Generate(dataset.ML1M, 0.01, 11)
	scheme := core.MustScheme(1024, 11)
	srv, err := service.NewServer(1024)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	upload := func(id string, p profile.Profile) {
		t.Helper()
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/users/"+id+"/fingerprint", &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %s: status %d", id, resp.StatusCode)
		}
	}

	const initial = 20
	for i := 0; i < initial; i++ {
		upload(fmt.Sprintf("u%03d", i), d.Profiles[i])
	}
	resp, err := http.Post(ts.URL+"/graph/build?k=5&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var build service.BuildResult
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if build.Epoch != 1 || build.Users != initial {
		t.Fatalf("first build = %+v", build)
	}

	// Churn: more users arrive after the build. The live epoch inserts
	// them online — newcomers are served immediately, no rebuild needed.
	upload("late-a", d.Profiles[initial])
	upload("late-b", d.Profiles[initial+1])
	resp, err = http.Get(ts.URL + "/users/u000/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	var nbrs []service.NeighborJSON
	if err := json.NewDecoder(resp.Body).Decode(&nbrs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nbrs) != 5 {
		t.Fatalf("epoch user got %d neighbors, want 5", len(nbrs))
	}
	resp, err = http.Get(ts.URL + "/users/late-a/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	nbrs = nil
	if err := json.NewDecoder(resp.Body).Decode(&nbrs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(nbrs) == 0 {
		t.Fatalf("post-epoch user: status %d with %d neighbors, want live 200", resp.StatusCode, len(nbrs))
	}

	// Rebuild folds the newcomers in and advances the epoch.
	resp, err = http.Post(ts.URL+"/graph/build?k=5&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if build.Epoch != 2 || build.Users != initial+2 {
		t.Fatalf("second build = %+v", build)
	}
	resp, err = http.Get(ts.URL + "/users/late-a/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late user after rebuild: status %d, want 200", resp.StatusCode)
	}
}
