// Command knngraph builds a KNN graph from a ratings file and writes its
// edges as TSV (user, neighbor, similarity) — the library applied to real
// data. With -mode goldfinger (the default), similarities are estimated
// from Single Hash Fingerprints; -mode native uses exact Jaccard.
//
// Usage:
//
//	knngraph -input ratings.dat -format movielens -algo hyrec -k 30 > graph.tsv
//	knngraph -input ml-20m/ratings.csv -format csv -mode native -algo nndescent
//	knngraph -input com-dblp.ungraph.txt -format edges -algo kiff
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knngraph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knngraph", flag.ContinueOnError)
	input := fs.String("input", "", "ratings file (required)")
	format := fs.String("format", "movielens", "input format: movielens, csv or edges")
	algo := fs.String("algo", "hyrec", "algorithm: bruteforce, hyrec, nndescent, lsh, kiff or bisection")
	mode := fs.String("mode", "goldfinger", "similarity mode: goldfinger or native")
	k := fs.Int("k", 30, "neighborhood size")
	bits := fs.Int("bits", 1024, "SHF length for goldfinger mode")
	seed := fs.Int64("seed", 42, "random seed")
	minRatings := fs.Int("minratings", 20, "minimum raw ratings per user (-1 disables)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}

	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	var ratings []dataset.Rating
	switch *format {
	case "movielens":
		ratings, err = dataset.ParseMovieLens(bufio.NewReader(f))
	case "csv":
		ratings, err = dataset.ParseCSV(bufio.NewReader(f))
	case "edges":
		ratings, err = dataset.ParseEdgeList(bufio.NewReader(f))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	d := dataset.FromRatings(*input, ratings, dataset.Options{MinRatings: *minRatings})
	if d.NumUsers() == 0 {
		return fmt.Errorf("no users left after preparation (try -minratings -1)")
	}
	fmt.Fprintf(os.Stderr, "prepared %d users, %d positive ratings\n", d.NumUsers(), d.NumRatings())

	var provider knn.Provider
	switch *mode {
	case "native":
		provider = knn.NewExplicitProvider(d.Profiles)
	case "goldfinger":
		scheme, err := core.NewScheme(*bits, uint64(*seed))
		if err != nil {
			return err
		}
		provider = knn.NewSHFProvider(scheme, d.Profiles)
	default:
		return fmt.Errorf("unknown mode %q (native or goldfinger)", *mode)
	}

	opts := knn.Options{Workers: *workers, Seed: *seed}
	start := time.Now()
	var g *knn.Graph
	var stats knn.Stats
	switch *algo {
	case "bruteforce":
		g, stats = knn.BruteForce(provider, *k, opts)
	case "hyrec":
		g, stats = knn.Hyrec(provider, *k, opts)
	case "nndescent":
		g, stats = knn.NNDescent(provider, *k, opts)
	case "lsh":
		g, stats = knn.LSH(d.Profiles, provider, *k, knn.LSHOptions{Workers: *workers, Seed: *seed})
	case "kiff":
		g, stats = knn.KIFF(d.Profiles, provider, *k, knn.KIFFOptions{Workers: *workers})
	case "bisection":
		g, stats = knn.RecursiveBisection(d.Profiles, provider, *k,
			knn.BisectionOptions{NumItems: d.NumItems, Seed: *seed})
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	fmt.Fprintf(os.Stderr, "built %d-NN graph in %v (%d comparisons, scanrate %.3f)\n",
		*k, time.Since(start).Round(time.Millisecond), stats.Comparisons, stats.ScanRate(d.NumUsers()))

	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, "# user\tneighbor\tsimilarity")
	for u, nbrs := range g.Neighbors {
		for _, nb := range nbrs {
			fmt.Fprintf(w, "%d\t%d\t%.6f\n", u, nb.ID, nb.Sim)
		}
	}
	return nil
}
