package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRatings produces a MovieLens-format file with enough structure for
// a 2-NN graph: 6 users over overlapping item blocks.
func writeRatings(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for u := 1; u <= 6; u++ {
		for i := 0; i < 8; i++ {
			item := u*4 + i // overlapping windows
			fmt.Fprintf(&sb, "%d::%d::5::0\n", u, item)
		}
	}
	path := filepath.Join(t.TempDir(), "ratings.dat")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("missing -input accepted")
	}
}

func TestRunBadChoices(t *testing.T) {
	path := writeRatings(t)
	for _, args := range [][]string{
		{"-input", path, "-format", "bogus"},
		{"-input", path, "-minratings", "-1", "-algo", "bogus"},
		{"-input", path, "-minratings", "-1", "-mode", "bogus"},
		{"-input", "/nonexistent"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunMinRatingsFiltersAll(t *testing.T) {
	path := writeRatings(t) // 8 ratings per user < default 20
	if err := run([]string{"-input", path}, &bytes.Buffer{}); err == nil {
		t.Error("expected 'no users left' error")
	}
}

func TestRunAllAlgorithmsAndModes(t *testing.T) {
	path := writeRatings(t)
	for _, algo := range []string{"bruteforce", "hyrec", "nndescent", "lsh", "kiff", "bisection"} {
		for _, mode := range []string{"native", "goldfinger"} {
			var out bytes.Buffer
			err := run([]string{"-input", path, "-minratings", "-1", "-algo", algo, "-mode", mode, "-k", "2"}, &out)
			if err != nil {
				t.Errorf("%s/%s: %v", algo, mode, err)
				continue
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) < 2 {
				t.Errorf("%s/%s: no edges emitted", algo, mode)
				continue
			}
			if !strings.HasPrefix(lines[0], "#") {
				t.Errorf("%s/%s: missing header line", algo, mode)
			}
			for _, line := range lines[1:] {
				if len(strings.Split(line, "\t")) != 3 {
					t.Errorf("%s/%s: malformed edge line %q", algo, mode, line)
				}
			}
		}
	}
}
