// Command knnload drives a running knnserver with an open-loop load mix
// and reports how it degrades: latency percentiles for the requests the
// server accepted, fail-fast behavior for the ones it shed, and whether
// every rejection carried a parseable Retry-After. Open-loop means
// arrivals happen on the clock, not after the previous response — the
// generator does not slow down just because the server does, which is
// exactly the regime admission control exists for.
//
// The workload is a query/mutation mix against a corpus the generator
// seeds itself: -mix splits arrivals between /query POSTs and mutations,
// and -delmix further splits the mutations between fingerprint PUTs
// (fresh users, plus overwrites and revivals of the seeded namespace) and
// DELETEs of seeded users — live-graph churn, not just appends. On top of
// that ride two optional chaos modes: -slow holds slow-loris
// connections that dribble a byte at a time into the request body (the
// server's read timeout must reap them), and -oversize sends fingerprint
// bodies larger than the server's wire size (the server must answer 413
// without reading the flood).
//
// The JSON report (BENCH_load.json schema) separates accepted from
// rejected latencies: a healthy overloaded server shows accepted p99
// close to its unloaded p99 and rejected p99 near zero — shedding is only
// graceful if saying no is fast and the work that was said yes to stays
// fast.
//
// Usage:
//
//	knnload -addr localhost:8080 -duration 30s -rate 2000 -mix 0.9 \
//	  -delmix 0.2 -slow 16 -oversize 8 -out BENCH_load.json
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knnload:", err)
		os.Exit(1)
	}
}

// LatencySummary is the percentile digest of one latency population.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Report is the BENCH_load.json schema.
type Report struct {
	Addr        string  `json:"addr"`
	DurationSec float64 `json:"duration_sec"`
	TargetRate  float64 `json:"target_rate"`
	QueryMix    float64 `json:"query_mix"`
	DeleteMix   float64 `json:"delete_mix"`
	K           int     `json:"k"`
	Bits        int     `json:"bits"`
	SeedUsers   int     `json:"seed_users"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	MeasuredAt  string  `json:"measured_at"`

	// Sent counts requests actually dispatched; ClientDropped counts
	// arrivals the generator refused to dispatch because -max-outstanding
	// was reached (the open-loop equivalent of a client giving up).
	Sent            int64   `json:"sent"`
	AchievedRate    float64 `json:"achieved_rate"`
	ClientDropped   int64   `json:"client_dropped"`
	TransportErrors int64   `json:"transport_errors"`

	// StatusCounts keys are numeric HTTP statuses as strings ("200",
	// "503", ...), values are response counts.
	StatusCounts map[string]int64 `json:"status_counts"`

	// Accepted digests 2xx responses; Rejected digests 429/503 — the
	// fail-fast path, whose latencies should be near zero under overload.
	Accepted LatencySummary `json:"accepted"`
	Rejected LatencySummary `json:"rejected"`
	// BadRetryAfter counts 429/503 responses whose Retry-After header was
	// missing or did not parse as a non-negative integer (an RFC 9110
	// violation the overload tests treat as a failure).
	BadRetryAfter int64 `json:"bad_retry_after"`

	// PartialResults counts 200 answers whose X-Partial-Results header
	// reported less than full shard coverage — a sharded deployment
	// serving around dead shards. Always 0 against a single node.
	PartialResults int64 `json:"partial_results,omitempty"`

	// Chaos results. SlowReaped counts slow-loris connections the server
	// terminated (its read timeout working); OversizeRejected counts
	// oversized uploads answered 413.
	SlowConns        int   `json:"slow_conns"`
	SlowReaped       int64 `json:"slow_reaped"`
	OversizeSent     int64 `json:"oversize_sent"`
	OversizeRejected int64 `json:"oversize_rejected"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knnload", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "", "target server host:port (required)")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	rate := fs.Float64("rate", 200, "open-loop arrival rate, requests/second")
	mix := fs.Float64("mix", 0.9, "fraction of arrivals that are /query POSTs; the rest are mutations")
	delmix := fs.Float64("delmix", 0, "fraction of the mutation arrivals that are DELETEs of seeded users; the rest are fingerprint PUTs")
	k := fs.Int("k", 10, "neighbors per query")
	mode := fs.String("mode", "auto", "/query mode to drive: auto, scan or graph")
	build := fs.Bool("build", false, "POST /graph/build after seeding so graph-mode queries have a fresh epoch")
	bits := fs.Int("bits", 1024, "fingerprint length; must match the server's -bits")
	seedUsers := fs.Int("users", 512, "users to upload before the run so queries scan a real corpus")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request client timeout")
	maxOutstanding := fs.Int("max-outstanding", 4096, "in-flight request cap; arrivals beyond it are counted client_dropped")
	slow := fs.Int("slow", 0, "concurrent slow-loris connections dribbling a body one byte at a time")
	oversize := fs.Int("oversize", 0, "oversized fingerprint uploads to send (each must get 413)")
	outPath := fs.String("out", "-", "JSON report path ('-' for stdout)")
	seed := fs.Int64("seed", 1, "random seed for the synthetic profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *rate <= 0 || *duration <= 0 || *mix < 0 || *mix > 1 {
		return fmt.Errorf("need -rate > 0, -duration > 0, 0 <= -mix <= 1")
	}
	if *delmix < 0 || *delmix > 1 {
		return fmt.Errorf("need 0 <= -delmix <= 1")
	}
	if *seedUsers < 1 || *k < 1 || *maxOutstanding < 1 {
		return fmt.Errorf("need -users >= 1, -k >= 1, -max-outstanding >= 1")
	}
	switch *mode {
	case "auto", "scan", "graph":
	default:
		return fmt.Errorf("bad -mode %q (auto, scan, graph)", *mode)
	}

	scheme, err := core.NewScheme(*bits, uint64(*seed))
	if err != nil {
		return err
	}
	l := &loader{
		base:    "http://" + *addr,
		k:       *k,
		mode:    *mode,
		seedN:   *seedUsers,
		maxOut:  int64(*maxOutstanding),
		timeout: *timeout,
		client: &http.Client{
			Timeout: *timeout,
			Transport: &http.Transport{
				MaxIdleConns:        *maxOutstanding,
				MaxIdleConnsPerHost: *maxOutstanding,
			},
		},
		statuses: make(map[string]int64),
	}
	l.makeBodies(scheme, *seed)

	fmt.Fprintf(out, "knnload: seeding %d users at %s\n", *seedUsers, *addr)
	if err := l.seed(ctx, *seedUsers); err != nil {
		return fmt.Errorf("seeding corpus: %w", err)
	}
	if *build {
		fmt.Fprintf(out, "knnload: building graph (k=%d)\n", *k)
		if err := l.build(ctx); err != nil {
			return fmt.Errorf("building graph: %w", err)
		}
	}

	fmt.Fprintf(out, "knnload: %v open-loop at %.0f req/s (mix %.0f%% query, %.0f%% of mutations DELETE), %d slow conns, %d oversized\n",
		*duration, *rate, *mix*100, *delmix*100, *slow, *oversize)
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	var chaos sync.WaitGroup
	for i := 0; i < *slow; i++ {
		chaos.Add(1)
		go func() { defer chaos.Done(); l.slowLoris(runCtx, *addr) }()
	}
	for i := 0; i < *oversize; i++ {
		chaos.Add(1)
		go func() { defer chaos.Done(); l.oversized(runCtx) }()
	}

	start := time.Now()
	l.openLoop(runCtx, *rate, *mix, *delmix, *seed)
	l.wg.Wait() // drain in-flight requests before reading the tallies
	chaos.Wait()
	elapsed := time.Since(start)
	// Drop the keep-alive pool: a generator that leaves thousands of idle
	// conns parked would hide server-side connection leaks from the
	// post-run goroutine checks.
	l.client.CloseIdleConnections()

	rep := l.report()
	rep.Addr = *addr
	rep.DurationSec = elapsed.Seconds()
	rep.TargetRate = *rate
	rep.QueryMix = *mix
	rep.DeleteMix = *delmix
	rep.K = *k
	rep.Bits = *bits
	rep.SeedUsers = *seedUsers
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.MeasuredAt = time.Now().UTC().Format(time.RFC3339)
	rep.SlowConns = *slow
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.Sent) / elapsed.Seconds()
	}

	fmt.Fprintf(out, "knnload: sent %d (%.0f/s achieved), accepted p99 %.1fms, rejected p99 %.1fms, dropped %d, bad Retry-After %d\n",
		rep.Sent, rep.AchievedRate, rep.Accepted.P99Ms, rep.Rejected.P99Ms, rep.ClientDropped, rep.BadRetryAfter)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "-" {
		_, err = out.Write(blob)
		return err
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

// loader owns the shared client, the pre-encoded fingerprint bodies, and
// the tallies every request goroutine reports into.
type loader struct {
	base    string
	k       int
	mode    string // /query mode parameter: auto, scan or graph
	seedN   int    // seeded-corpus size: mutation targets for DELETEs and revivals
	maxOut  int64
	timeout time.Duration
	client  *http.Client

	bodies [][]byte // pre-encoded fingerprint wire blobs
	next   atomic.Int64

	wg          sync.WaitGroup
	outstanding atomic.Int64
	sent        atomic.Int64
	dropped     atomic.Int64
	transport   atomic.Int64
	badRetry    atomic.Int64
	partial     atomic.Int64
	reaped      atomic.Int64
	overSent    atomic.Int64
	overOK      atomic.Int64

	mu       sync.Mutex
	statuses map[string]int64
	accepted []float64 // ms
	rejected []float64 // ms
}

// makeBodies pre-encodes a pool of fingerprint wire blobs so the hot loop
// never pays hashing or serialization — the generator must stay far
// cheaper than the server under test.
func (l *loader) makeBodies(scheme *core.Scheme, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const pool = 64
	l.bodies = make([][]byte, pool)
	for i := range l.bodies {
		items := make([]profile.ItemID, 0, 40)
		for j := 0; j < 40; j++ {
			items = append(items, profile.ItemID(rng.Intn(5000)))
		}
		var buf bytes.Buffer
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(items...))); err != nil {
			panic(err) // bytes.Buffer writes cannot fail
		}
		l.bodies[i] = buf.Bytes()
	}
}

func (l *loader) body() []byte {
	return l.bodies[int(l.next.Add(1))%len(l.bodies)]
}

// seed uploads n users with bounded concurrency and fails on the first
// non-2xx answer: a corpus that did not seed invalidates the whole run.
func (l *loader) seed(ctx context.Context, n int) error {
	sem := make(chan struct{}, 32)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			url := fmt.Sprintf("%s/users/load-%d/fingerprint", l.base, i)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(l.body()))
			resp, err := l.client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					err = fmt.Errorf("seed %s: status %d", url, resp.StatusCode)
				}
			}
			if err != nil {
				select {
				case errc <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// build POSTs /graph/build so graph-mode queries find a fresh epoch. The
// request runs without the per-request client timeout — a build over the
// seeded corpus can legitimately take longer than one query is allowed to.
func (l *loader) build(ctx context.Context) error {
	url := fmt.Sprintf("%s/graph/build?k=%d", l.base, l.k)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	client := &http.Client{Transport: l.client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// openLoop dispatches arrivals on the clock until ctx expires. When the
// generator falls behind schedule it fires immediately without sleeping —
// arrivals owed are arrivals sent, which is what makes the loop open.
func (l *loader) openLoop(ctx context.Context, rate, mix, delmix float64, seed int64) {
	interval := time.Duration(float64(time.Second) / rate)
	rng := rand.New(rand.NewSource(seed + 1))
	start := time.Now()
	for i := int64(0); ; i++ {
		due := start.Add(time.Duration(float64(i) * float64(interval)))
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			return
		}
		if l.outstanding.Load() >= l.maxOut {
			l.dropped.Add(1)
			continue
		}
		isQuery := rng.Float64() < mix
		isDelete := !isQuery && rng.Float64() < delmix
		// A quarter of the PUTs overwrite (or revive, after a DELETE hit
		// them) the seeded namespace; the rest land on fresh ids. Deletes
		// always target seeded users so they tombstone real graph nodes.
		seedTarget := !isQuery && rng.Intn(4) == 0
		userID := rng.Intn(1 << 20)
		seedID := rng.Intn(l.seedN)
		l.outstanding.Add(1)
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer l.outstanding.Add(-1)
			switch {
			case isQuery:
				l.fire(http.MethodPost, fmt.Sprintf("%s/query?k=%d&mode=%s", l.base, l.k, l.mode))
			case isDelete:
				l.fire(http.MethodDelete, fmt.Sprintf("%s/users/load-%d/fingerprint", l.base, seedID))
			case seedTarget:
				l.fire(http.MethodPut, fmt.Sprintf("%s/users/load-%d/fingerprint", l.base, seedID))
			default:
				l.fire(http.MethodPut, fmt.Sprintf("%s/users/load-put-%d/fingerprint", l.base, userID))
			}
		}()
	}
}

// fire sends one request and tallies the outcome. Requests deliberately
// carry no context beyond the client timeout: a generator that cancels
// its own laggards would hide exactly the hangs the report must expose.
func (l *loader) fire(method, url string) {
	l.sent.Add(1)
	var body io.Reader
	if method != http.MethodDelete {
		body = bytes.NewReader(l.body())
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		l.transport.Add(1)
		return
	}
	startReq := time.Now()
	resp, err := l.client.Do(req)
	lat := time.Since(startReq)
	if err != nil {
		l.transport.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ms := float64(lat) / float64(time.Millisecond)
	if resp.StatusCode/100 == 2 && isPartialCoverage(resp.Header.Get("X-Partial-Results")) {
		l.partial.Add(1)
	}
	rejected := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
	badRetry := false
	if rejected {
		ra := resp.Header.Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 0 {
			badRetry = true
		}
	}

	l.mu.Lock()
	l.statuses[strconv.Itoa(resp.StatusCode)]++
	switch {
	case resp.StatusCode/100 == 2:
		l.accepted = append(l.accepted, ms)
	case rejected:
		l.rejected = append(l.rejected, ms)
	}
	l.mu.Unlock()
	if badRetry {
		l.badRetry.Add(1)
	}
}

// slowLoris holds one connection open and dribbles an upload one byte per
// write, far below any legitimate client rate. A hardened server reaps it
// via ReadTimeout; the victim of the test is the server's connection
// budget, never the generator's.
func (l *loader) slowLoris(ctx context.Context, addr string) {
	d := net.Dialer{Timeout: l.timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	head := fmt.Sprintf("PUT /users/slow/fingerprint HTTP/1.1\r\nHost: %s\r\nContent-Length: 1000000\r\n\r\n", addr)
	if _, err := conn.Write([]byte(head)); err != nil {
		l.reaped.Add(1)
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			conn.SetWriteDeadline(time.Now().Add(l.timeout))
			if _, err := conn.Write([]byte{0x00}); err != nil {
				// The server hung up on us mid-dribble: that is the read
				// timeout doing its job.
				l.reaped.Add(1)
				return
			}
		}
	}
}

// oversized uploads a body far beyond the fingerprint wire size; the
// server must answer 413 without buffering the flood. The body opens
// with a well-formed header declaring a huge bit length — a garbage
// header would be rejected as a 400 parse error before the size cap
// ever engaged, which is not the defense under test.
func (l *loader) oversized(ctx context.Context) {
	l.overSent.Add(1)
	body := make([]byte, 1<<20)
	copy(body, "SHF1")
	binary.LittleEndian.PutUint32(body[4:8], 1<<24) // declared bits, far past any server's -bits
	url := l.base + "/users/flood/fingerprint"
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return
	}
	resp, err := l.client.Do(req)
	if err != nil {
		// The server may slam the connection after answering 413 without
		// draining; Go surfaces that as a transport error on some kernels.
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		l.overOK.Add(1)
	}
	l.mu.Lock()
	l.statuses[strconv.Itoa(resp.StatusCode)]++
	l.mu.Unlock()
}

func (l *loader) report() Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Report{
		Sent:             l.sent.Load(),
		ClientDropped:    l.dropped.Load(),
		TransportErrors:  l.transport.Load(),
		StatusCounts:     l.statuses,
		Accepted:         summarize(l.accepted),
		Rejected:         summarize(l.rejected),
		BadRetryAfter:    l.badRetry.Load(),
		PartialResults:   l.partial.Load(),
		SlowReaped:       l.reaped.Load(),
		OversizeSent:     l.overSent.Load(),
		OversizeRejected: l.overOK.Load(),
	}
}

// isPartialCoverage parses an X-Partial-Results "served/total" value and
// reports whether it admits to less than full coverage.
func isPartialCoverage(v string) bool {
	var served, total int
	if _, err := fmt.Sscanf(v, "%d/%d", &served, &total); err != nil {
		return false
	}
	return served < total
}

// summarize sorts in place and digests one latency population.
func summarize(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	return LatencySummary{
		Count: int64(len(ms)),
		P50Ms: percentile(ms, 0.50),
		P90Ms: percentile(ms, 0.90),
		P99Ms: percentile(ms, 0.99),
		MaxMs: ms[len(ms)-1],
	}
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
