package main

// Shard-tier chaos harness: boots the real sharded stack — four
// shard-cores behind a scatter-gather router — with a byte-level TCP
// chaos proxy in front of each shard, then kills and slow-lorises
// shards mid-load and asserts the router's degradation contract:
//
//   - /query keeps answering 200 with X-Partial-Results: 3/4 while one
//     of four shards is hard-dead, under 2× the healthy request load;
//   - p99 stays under 2× the healthy baseline (with a small absolute
//     floor so machine noise on a quiet box cannot flake the ratio);
//   - recall@10 degrades proportionally to the lost coverage — the dead
//     shard owns a measured fraction of every ground-truth neighborhood
//     and the degraded recall must sit within a few points of
//     healthy × (1 − that fraction), and never below 0.70 × healthy;
//   - mutations for users on the dead shard fail fast with 503 and a
//     Retry-After from the breaker, while mutations for live shards
//     keep succeeding;
//   - after the shard comes back the breaker re-closes via the active
//     prober and full 4/4 coverage resumes within one open interval
//     plus a probe tick.
//
// The measured numbers land in BENCH_load.json under "shard_chaos".

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
	"goldfinger/internal/router"
	"goldfinger/internal/service"
)

// Chaos proxy modes. The proxy sits on the wire between router and
// shard, so every failure it injects is exactly what a real network
// partition or dead process looks like to the router's transport.
const (
	proxyPass int32 = iota
	// proxyKill refuses new connections (accept-then-close, the shape of
	// a crashed process whose port is gone) and severs in-flight ones.
	proxyKill
	// proxyStall slow-lorises: accepts, swallows the request bytes and
	// never answers, leaving the router's per-shard deadline as the only
	// way out.
	proxyStall
)

type chaosProxy struct {
	ln     net.Listener
	target string
	mode   atomic.Int32
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

// setMode switches the failure mode. Entering a failure mode severs
// in-flight connections too — a crash does not finish the requests it
// was serving.
func (p *chaosProxy) setMode(m int32) {
	p.mode.Store(m)
	if m != proxyPass {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *chaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		switch p.mode.Load() {
		case proxyKill:
			c.Close()
		case proxyStall:
			p.track(c)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				defer p.untrack(c)
				io.Copy(io.Discard, c) // swallow; never answer
				c.Close()
			}()
		default:
			backend, err := net.DialTimeout("tcp", p.target, time.Second)
			if err != nil {
				c.Close()
				continue
			}
			p.track(c)
			p.track(backend)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				defer p.untrack(c)
				defer p.untrack(backend)
				var pipes sync.WaitGroup
				pipes.Add(2)
				go func() {
					defer pipes.Done()
					io.Copy(backend, c)
					backend.(*net.TCPConn).CloseWrite()
				}()
				go func() {
					defer pipes.Done()
					io.Copy(c, backend)
					c.(*net.TCPConn).CloseWrite()
				}()
				pipes.Wait()
				c.Close()
				backend.Close()
			}()
		}
	}
}

func (p *chaosProxy) close() {
	p.ln.Close()
	p.setMode(proxyKill) // sever whatever is still piping
	p.wg.Wait()
}

// chaosPhase aggregates one measurement window of concurrent queries.
type chaosPhase struct {
	mu        sync.Mutex
	total     int
	ok200     int
	partial   int            // 200s admitting less than full coverage
	statuses  map[int]int    // non-200 statuses
	partials  map[string]int // X-Partial-Results values on 200s
	lats      []float64      // ms, 200s only
	recallSum float64
	transport int
}

func (ph *chaosPhase) p99() float64 {
	sort.Float64s(ph.lats)
	return percentile(ph.lats, 0.99)
}

func (ph *chaosPhase) p50() float64 {
	sort.Float64s(ph.lats)
	return percentile(ph.lats, 0.50)
}

func (ph *chaosPhase) recall() float64 {
	if ph.ok200 == 0 {
		return 0
	}
	return ph.recallSum / float64(ph.ok200)
}

// shardChaosJSON is the BENCH_load.json "shard_chaos" section.
type shardChaosJSON struct {
	Shards            int             `json:"shards"`
	SeedUsers         int             `json:"seed_users"`
	Bits              int             `json:"bits"`
	K                 int             `json:"k"`
	KilledShard       string          `json:"killed_shard"`
	KilledTruthShare  float64         `json:"killed_truth_share"`
	ExpectedRecall    float64         `json:"expected_degraded_recall"`
	Healthy           chaosPhaseJSON  `json:"healthy"`
	Degraded          chaosPhaseJSON  `json:"degraded"`
	RecoveredWithinMS float64         `json:"recovered_within_ms"`
	BreakerReclosed   bool            `json:"breaker_reclosed"`
	StallPhase        *chaosPhaseJSON `json:"stall,omitempty"`
	MeasuredAt        string          `json:"measured_at"`
}

type chaosPhaseJSON struct {
	Queries    int     `json:"queries"`
	OK200      int     `json:"status_200"`
	Partial    int     `json:"partial_responses"`
	RecallAt10 float64 `json:"recall_at_10"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

func phaseJSON(ph *chaosPhase) chaosPhaseJSON {
	return chaosPhaseJSON{
		Queries: ph.total, OK200: ph.ok200, Partial: ph.partial,
		RecallAt10: ph.recall(), P50Ms: ph.p50(), P99Ms: ph.p99(),
	}
}

// TestShardChaosKillOneOfFour is the acceptance test for the
// fault-tolerant shard tier (make shardcheck). See the file comment for
// the contract it proves.
func TestShardChaosKillOneOfFour(t *testing.T) {
	const (
		bits    = 256
		nShards = 4
		nUsers  = 1600
		k       = 10
		nQuery  = 32
	)
	names := make([]string, nShards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	place := router.NewPlacement(names, 0)

	// Real shard-cores behind real HTTP servers behind chaos proxies.
	shards := make([]*service.Server, nShards)
	proxies := make([]*chaosProxy, nShards)
	specs := make([]router.ShardSpec, nShards)
	for i := 0; i < nShards; i++ {
		idx := i
		srv, err := service.NewServer(bits)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetAdmission(admit.DefaultConfig())
		srv.SetShard(names[i], func(id string) bool { return place.Owner(id) == idx })
		shards[i] = srv
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		httpSrv := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
		}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		proxies[i] = newChaosProxy(t, ln.Addr().String())
		defer proxies[i].close()
		specs[i] = router.ShardSpec{Name: names[i], URL: "http://" + proxies[i].addr()}
	}

	// Tight chaos-scale timings: a 600ms query budget so a stalled shard
	// costs at most ~half a second before the deadline reaps it, a 500ms
	// breaker open interval and a 100ms prober tick so recovery is
	// measurable within the test's seconds-scale windows.
	rt, err := router.New(router.Config{
		Shards:       specs,
		Quorum:       0.5,
		QueryTimeout: 600 * time.Millisecond,
		HedgeAfter:   25 * time.Millisecond,
		Retries:      1,
		RetryBase:    10 * time.Millisecond,
		Breaker: router.BreakerConfig{
			Window: 32, MinSamples: 4, ErrorRate: 0.5,
			ConsecutiveFails: 3, OpenFor: 500 * time.Millisecond,
			HalfOpenProbes: 1,
		},
		ProbeInterval: 100 * time.Millisecond,
		Metrics:       obs.NewRegistry(),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	frontLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	front := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go front.Serve(frontLn)
	defer front.Close()
	base := "http://" + frontLn.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	// Seed distinct-profile users directly into their owning shard-core
	// (in-process: no TCP) and keep the fingerprints for ground truth.
	rng := rand.New(rand.NewSource(271828))
	scheme := core.MustScheme(bits, 17)
	mkProfile := func() profile.Profile {
		items := make([]profile.ItemID, 0, 24)
		for len(items) < 24 {
			items = append(items, profile.ItemID(rng.Intn(4000)+1))
		}
		return profile.New(items...)
	}
	ids := make([]string, nUsers)
	fps := make([]core.Fingerprint, nUsers)
	owners := make([]int, nUsers)
	for i := 0; i < nUsers; i++ {
		ids[i] = fmt.Sprintf("u-%04d", i)
		fps[i] = scheme.Fingerprint(mkProfile())
		owners[i] = place.Owner(ids[i])
		var body strings.Builder
		if err := core.WriteFingerprint(&body, fps[i]); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPut,
			"/users/"+ids[i]+"/fingerprint", strings.NewReader(body.String()))
		rec := httptest.NewRecorder()
		shards[owners[i]].Handler().ServeHTTP(rec, req)
		if rec.Code/100 != 2 {
			t.Fatalf("seed %s on %s: %d %s", ids[i], names[owners[i]], rec.Code, rec.Body.String())
		}
	}

	// Exact ground truth: full-corpus Jaccard top-k per query fingerprint
	// (mode=scan serves exactly this, so healthy recall is ~1 and every
	// degraded loss is attributable to the killed shard's users).
	corpus, err := core.NewPackedCorpus(bits, fps)
	if err != nil {
		t.Fatal(err)
	}
	qfps := make([]core.Fingerprint, nQuery)
	qblobs := make([][]byte, nQuery)
	truths := make([]map[string]bool, nQuery)
	for q := 0; q < nQuery; q++ {
		qfps[q] = scheme.Fingerprint(mkProfile())
		var buf strings.Builder
		if err := core.WriteFingerprint(&buf, qfps[q]); err != nil {
			t.Fatal(err)
		}
		qblobs[q] = []byte(buf.String())
		fp := qfps[q]
		best := knn.TopKRange(nUsers, k, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(fp, lo, hi, out)
		})
		truths[q] = make(map[string]bool, k)
		for _, b := range best {
			truths[q][ids[b.ID]] = true
		}
	}

	// The victim is the shard owning the smallest slice of the ground
	// truth: killing it maximizes headroom under the ≥0.70×healthy floor
	// while still proving proportional degradation.
	truthCount := make([]int, nShards)
	truthTotal := 0
	for q := range truths {
		for id := range truths[q] {
			var idx int
			fmt.Sscanf(id, "u-%d", &idx)
			truthCount[owners[idx]]++
			truthTotal++
		}
	}
	victim := 0
	for i := 1; i < nShards; i++ {
		if truthCount[i] < truthCount[victim] {
			victim = i
		}
	}
	victimShare := float64(truthCount[victim]) / float64(truthTotal)
	t.Logf("truth ownership %v; killing %s (%.1f%% of ground truth)",
		truthCount, names[victim], 100*victimShare)

	queryOnce := func(q int) (status int, partialHdr string, hitUsers []string, ms float64, err error) {
		start := time.Now()
		resp, err := client.Post(
			fmt.Sprintf("%s/query?k=%d&mode=scan", base, k),
			"application/octet-stream", strings.NewReader(string(qblobs[q])))
		if err != nil {
			return 0, "", nil, 0, err
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		ms = float64(time.Since(start)) / float64(time.Millisecond)
		partialHdr = resp.Header.Get(router.HeaderPartialResults)
		if resp.StatusCode == http.StatusOK {
			var hits []router.Hit
			if err := json.Unmarshal(blob, &hits); err != nil {
				return resp.StatusCode, partialHdr, nil, ms, fmt.Errorf("bad hits: %v", err)
			}
			for _, h := range hits {
				hitUsers = append(hitUsers, h.User)
			}
		}
		return resp.StatusCode, partialHdr, hitUsers, ms, nil
	}

	runPhase := func(workers int, d time.Duration) *chaosPhase {
		ph := &chaosPhase{statuses: make(map[int]int), partials: make(map[string]int)}
		var next atomic.Int64
		stop := time.Now().Add(d)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					q := int(next.Add(1)) % nQuery
					status, partialHdr, hits, ms, err := queryOnce(q)
					ph.mu.Lock()
					ph.total++
					if err != nil {
						ph.transport++
					} else if status == http.StatusOK {
						ph.ok200++
						ph.lats = append(ph.lats, ms)
						ph.partials[partialHdr]++
						if isPartialCoverage(partialHdr) {
							ph.partial++
						}
						got := 0
						for _, u := range hits {
							if truths[q][u] {
								got++
							}
						}
						ph.recallSum += float64(got) / float64(k)
					} else {
						ph.statuses[status]++
					}
					ph.mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return ph
	}

	routerStats := func() router.RouterStats {
		resp, err := client.Get(base + "/stats")
		if err != nil {
			t.Fatalf("router stats: %v", err)
		}
		defer resp.Body.Close()
		var st router.RouterStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("router stats decode: %v", err)
		}
		return st
	}

	// Warm up connections and latency windows, then the healthy baseline.
	for q := 0; q < 4; q++ {
		if status, partialHdr, _, _, err := queryOnce(q); err != nil || status != 200 || partialHdr != "4/4" {
			t.Fatalf("warm-up query: status %d partial %q err %v", status, partialHdr, err)
		}
	}
	healthy := runPhase(4, 1200*time.Millisecond)
	if healthy.ok200 != healthy.total || healthy.transport > 0 {
		t.Fatalf("healthy phase not clean: %d/%d ok, %d transport errors, statuses %v",
			healthy.ok200, healthy.total, healthy.transport, healthy.statuses)
	}
	if r := healthy.recall(); r < 0.9 {
		t.Fatalf("healthy recall %.3f < 0.9: scan ground truth disagrees with the service", r)
	}
	t.Logf("healthy: %d queries, recall %.3f, p50 %.2fms p99 %.2fms",
		healthy.total, healthy.recall(), healthy.p50(), healthy.p99())

	// Hard-kill the victim mid-load: double the worker count (2× load)
	// and keep querying while its connections die.
	proxies[victim].setMode(proxyKill)
	degraded := runPhase(8, 1800*time.Millisecond)
	t.Logf("degraded: %d queries (%d ok, %d partial, statuses %v, partials %v), recall %.3f, p99 %.2fms",
		degraded.total, degraded.ok200, degraded.partial, degraded.statuses,
		degraded.partials, degraded.recall(), degraded.p99())

	if degraded.total < 50 {
		t.Fatalf("degraded phase only issued %d queries; load too thin to mean anything", degraded.total)
	}
	// Availability: the dead minority must not surface as client errors.
	if float64(degraded.ok200) < 0.95*float64(degraded.total) {
		t.Errorf("only %d/%d degraded queries answered 200; a 1-of-4 kill must not fail queries",
			degraded.ok200, degraded.total)
	}
	// Coverage honesty: the 200s must admit the hole.
	want := fmt.Sprintf("%d/%d", nShards-1, nShards)
	if degraded.partials[want] < degraded.ok200*9/10 {
		t.Errorf("only %d/%d degraded 200s carried X-Partial-Results: %s (saw %v)",
			degraded.partials[want], degraded.ok200, want, degraded.partials)
	}
	// Tail latency: a dead shard fails fast (conn refused or open
	// breaker), so the tail must stay near the healthy baseline. The
	// 250ms floor absorbs scheduler noise on a loaded CI box; it is
	// still well under half the 600ms budget a stall would consume.
	p99Bound := 2 * healthy.p99()
	if p99Bound < 250 {
		p99Bound = 250
	}
	if degraded.p99() > p99Bound {
		t.Errorf("degraded p99 %.2fms exceeds %.2fms (2× healthy %.2fms)",
			degraded.p99(), p99Bound, healthy.p99())
	}
	// Recall: proportional to lost coverage, and above the hard floor.
	expected := healthy.recall() * (1 - victimShare)
	if got := degraded.recall(); got < 0.70*healthy.recall() {
		t.Errorf("degraded recall %.3f below 0.70× healthy %.3f", got, healthy.recall())
	} else if got < expected-0.05 || got > expected+0.05 {
		t.Errorf("degraded recall %.3f not proportional to lost coverage: expected %.3f±0.05 (victim owns %.1f%% of truth)",
			got, expected, 100*victimShare)
	}

	// Mutations while the victim is dead: the breaker has tripped by now
	// (the load above hammered it), so a write routed to the dead shard
	// must fail fast with 503 + Retry-After, and writes to live shards
	// must still succeed.
	var deadID, liveID string
	for i := 0; i < nUsers && (deadID == "" || liveID == ""); i++ {
		if owners[i] == victim {
			deadID = ids[i]
		} else {
			liveID = ids[i]
		}
	}
	var body strings.Builder
	if err := core.WriteFingerprint(&body, fps[0]); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/users/"+deadID+"/fingerprint",
		strings.NewReader(body.String()))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("mutation to dead shard: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 for dead-shard mutation lacks Retry-After")
		}
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		// Breaker raced half-open and the probe attempt hit the dead
		// proxy: also a legal fast failure.
	default:
		t.Errorf("mutation to dead shard: status %d, want 503 (or 502/504)", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, base+"/users/"+liveID+"/fingerprint",
		strings.NewReader(body.String()))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatalf("mutation to live shard: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Errorf("mutation to a live shard failed with %d while another shard was dead", resp.StatusCode)
	}

	// Restart the shard (restore the wire) and time recovery: the active
	// prober must re-close the breaker and restore 4/4 coverage within
	// one open interval (500ms) plus a probe tick (100ms) plus slack.
	proxies[victim].setMode(proxyPass)
	restoreStart := time.Now()
	recovered := false
	var recoveredIn time.Duration
	for time.Since(restoreStart) < 3*time.Second {
		st := routerStats()
		if st.ShardsHealthy == nShards {
			recovered = true
			recoveredIn = time.Since(restoreStart)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("breaker did not re-close within 3s of the shard coming back: %+v", routerStats())
	}
	if recoveredIn > 2*time.Second {
		t.Errorf("recovery took %v, want within one open interval + probe tick (≈600ms) + slack", recoveredIn)
	}
	t.Logf("recovered to %d/%d healthy in %v", nShards, nShards, recoveredIn)
	if status, partialHdr, _, _, err := queryOnce(0); err != nil || status != 200 || partialHdr != "4/4" {
		t.Errorf("post-recovery query: status %d partial %q err %v, want 200 4/4", status, partialHdr, err)
	}

	// Slow-loris a different shard briefly: queries must still answer 200
	// — first rounds pay the per-shard deadline, then the breaker trips
	// on the timeouts and the tail drops back — and admit 3/4 coverage.
	stallVictim := (victim + 1) % nShards
	proxies[stallVictim].setMode(proxyStall)
	stall := runPhase(4, 1500*time.Millisecond)
	proxies[stallVictim].setMode(proxyPass)
	t.Logf("stall(%s): %d queries (%d ok, %d partial, statuses %v), p99 %.2fms",
		names[stallVictim], stall.total, stall.ok200, stall.partial, stall.statuses, stall.p99())
	if float64(stall.ok200) < 0.95*float64(stall.total) {
		t.Errorf("only %d/%d queries answered 200 under a stalled shard", stall.ok200, stall.total)
	}
	if stall.partial == 0 {
		t.Error("no query admitted partial coverage under a stalled shard: deadlines are not reaping it")
	}

	// Record the run in BENCH_load.json's shard_chaos section.
	section := shardChaosJSON{
		Shards: nShards, SeedUsers: nUsers, Bits: bits, K: k,
		KilledShard: names[victim], KilledTruthShare: victimShare,
		ExpectedRecall: expected,
		Healthy:        phaseJSON(healthy), Degraded: phaseJSON(degraded),
		RecoveredWithinMS: float64(recoveredIn) / float64(time.Millisecond),
		BreakerReclosed:   true,
		MeasuredAt:        time.Now().UTC().Format(time.RFC3339),
	}
	stallJSON := phaseJSON(stall)
	section.StallPhase = &stallJSON
	writeChaosSection(t, "../../BENCH_load.json", section)
}

// writeChaosSection merges the shard_chaos section into BENCH_load.json
// without disturbing the flat load-test report knnload writes there.
func writeChaosSection(t *testing.T, path string, section shardChaosJSON) {
	t.Helper()
	mergeBenchSections(t, path, map[string]any{"shard_chaos": section})
}

// mergeBenchSections merges named sections into the JSON document at
// path, preserving every key it does not own.
func mergeBenchSections(t *testing.T, path string, sections map[string]any) {
	t.Helper()
	doc := make(map[string]any)
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Logf("existing %s does not parse (%v); rewriting from scratch", path, err)
			doc = make(map[string]any)
		}
	}
	for k, v := range sections {
		doc[k] = v
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatalf("recording bench sections: %v", err)
	}
}
