package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/core"
	"goldfinger/internal/profile"
	"goldfinger/internal/service"
)

// startTestServer boots a hardened http.Server around a fresh service —
// the same shape cmd/knnserver assembles — on an ephemeral port, and
// returns the address plus the server for direct (in-process) seeding.
func startTestServer(t *testing.T, bits int, cfg admit.Config, readTimeout time.Duration) (string, *service.Server, func()) {
	t.Helper()
	srv, err := service.NewServer(bits)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAdmission(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
	done := make(chan struct{})
	go func() { defer close(done); httpSrv.Serve(ln) }()
	return ln.Addr().String(), srv, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}
}

// fingerprintBlobs pre-encodes a small pool of fingerprint bodies.
func fingerprintBlobs(t *testing.T, scheme *core.Scheme, n int) [][]byte {
	t.Helper()
	blobs := make([][]byte, n)
	for i := range blobs {
		var buf bytes.Buffer
		p := profile.New(profile.ItemID(i*7+1), profile.ItemID(i*11+2), profile.ItemID(i*13+3), profile.ItemID(i+4000))
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}
	return blobs
}

// seedDirect uploads n users through the handler in-process — no TCP, no
// client — so building a large corpus costs microseconds per user instead
// of a round trip.
func seedDirect(t *testing.T, srv *service.Server, blobs [][]byte, n int) {
	t.Helper()
	h := srv.Handler()
	for i := 0; i < n; i++ {
		req := httptest.NewRequest(http.MethodPut,
			fmt.Sprintf("/users/seed-%d/fingerprint", i), bytes.NewReader(blobs[i%len(blobs)]))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code/100 != 2 {
			t.Fatalf("seed %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
}

func readReport(t *testing.T, path string) Report {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, blob)
	}
	return rep
}

// TestLoadSmoke runs the full generator — mixed workload plus both chaos
// modes — for a couple of seconds against a hardened in-process server
// and checks the report: traffic flowed, every rejection carried a
// parseable Retry-After, the oversized bodies got 413, and the server's
// ReadTimeout reaped the slow-loris connections.
func TestLoadSmoke(t *testing.T) {
	addr, _, shutdown := startTestServer(t, 512, admit.DefaultConfig(), time.Second)
	defer shutdown()

	out := filepath.Join(t.TempDir(), "load.json")
	err := run(context.Background(), []string{
		"-addr", addr, "-bits", "512", "-users", "64",
		"-duration", "2500ms", "-rate", "250", "-mix", "0.8",
		"-slow", "2", "-oversize", "2", "-timeout", "5s",
		"-out", out, "-seed", "3",
	}, io.Discard)
	if err != nil {
		t.Fatalf("knnload run: %v", err)
	}

	rep := readReport(t, out)
	if rep.Sent < 100 {
		t.Errorf("sent %d requests, expected a few hundred at 250/s for 2.5s", rep.Sent)
	}
	if rep.StatusCounts["200"] == 0 || rep.StatusCounts["204"] == 0 {
		t.Errorf("want both query 200s and upload 204s, got %v", rep.StatusCounts)
	}
	if rep.BadRetryAfter != 0 {
		t.Errorf("%d rejections had a missing or unparseable Retry-After", rep.BadRetryAfter)
	}
	if rep.OversizeSent != 2 || rep.OversizeRejected < 1 {
		t.Errorf("oversize: sent %d rejected %d, want 2 sent and at least 1 rejected with 413",
			rep.OversizeSent, rep.OversizeRejected)
	}
	if rep.SlowReaped < 1 {
		t.Errorf("no slow-loris connection was reaped; ReadTimeout is not protecting the server")
	}
	if rep.Accepted.Count == 0 || rep.Accepted.P99Ms <= 0 {
		t.Errorf("accepted latency summary empty: %+v", rep.Accepted)
	}
}

// TestOverloadGracefulDegradation is the acceptance test for the
// admission layer: measure the server's saturation throughput and
// unloaded p99 closed-loop, then drive well past 4× saturation open-loop
// for over 10 seconds. Graceful degradation means the requests the server
// accepted stayed fast (p99 within 3× unloaded), the excess was shed
// fail-fast with 429/503 and parseable Retry-After, nothing hung past its
// deadline, and the goroutine count returned to baseline afterwards.
func TestOverloadGracefulDegradation(t *testing.T) {
	// Corpus sizing: a query must cost multiple milliseconds of CPU so
	// that (a) saturation QPS is low enough for one machine to overdrive
	// 4×, and (b) fixed noise — GC pauses, scheduler churn from the
	// generator sharing the cores — stays small relative to the latencies
	// the 3× bound compares.
	const bits = 2048
	const corpus = 60000
	cfg := admit.DefaultConfig()
	// One query slot and no queue: on this box a query is a multi-ms
	// single-threaded corpus scan, so saturation is low enough that the
	// generator can overdrive it several-fold from the same machine.
	cfg.Query = admit.ClassConfig{MaxInflight: 1, MaxQueue: 0, Timeout: 5 * time.Second}
	addr, srv, shutdown := startTestServer(t, bits, cfg, 30*time.Second)
	defer shutdown()

	scheme := core.MustScheme(bits, 99)
	blobs := fingerprintBlobs(t, scheme, 32)
	seedDirect(t, srv, blobs, corpus)

	baseline := runtime.NumGoroutine()

	// Closed-loop, one client: the sequential latency distribution is the
	// unloaded baseline, and with MaxInflight=1 its reciprocal mean is the
	// saturation QPS.
	client := &http.Client{Timeout: 10 * time.Second}
	var lats []float64
	query := func() (float64, int) {
		start := time.Now()
		resp, err := client.Post("http://"+addr+"/query?k=10", "application/octet-stream",
			bytes.NewReader(blobs[0]))
		if err != nil {
			t.Fatalf("unloaded query: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return float64(time.Since(start)) / float64(time.Millisecond), resp.StatusCode
	}
	for i := 0; i < 3; i++ { // warm-up: first query pays the corpus packing
		query()
	}
	measureStart := time.Now()
	for time.Since(measureStart) < 2*time.Second || len(lats) < 20 {
		ms, code := query()
		if code != http.StatusOK {
			t.Fatalf("unloaded query: status %d", code)
		}
		lats = append(lats, ms)
	}
	elapsed := time.Since(measureStart)
	satQPS := float64(len(lats)) / elapsed.Seconds()
	sort.Float64s(lats)
	unloadedP99 := percentile(lats, 0.99)
	client.CloseIdleConnections()
	t.Logf("saturation %.0f qps, unloaded p99 %.2fms over %d queries", satQPS, unloadedP99, len(lats))

	// Open-loop at 4.6× measured saturation for >10s; the assertion below
	// checks the achieved rate still cleared 4×. The margin over 4× is
	// deliberately small: generator and server share this machine, so
	// every extra shed request steals CPU from the accepted ones and
	// smears the very tail latency the test is bounding.
	out := filepath.Join(t.TempDir(), "overload.json")
	err := run(context.Background(), []string{
		"-addr", addr, "-bits", fmt.Sprint(bits), "-users", "1",
		"-duration", "10500ms", "-rate", fmt.Sprintf("%.1f", 4.6*satQPS),
		"-mix", "1", "-k", "10", "-timeout", "8s",
		"-out", out, "-seed", "7",
	}, io.Discard)
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	rep := readReport(t, out)
	t.Logf("overload: sent %d (%.0f/s), accepted %d p99 %.2fms max %.2fms, rejected %d p99 %.2fms, dropped %d",
		rep.Sent, rep.AchievedRate, rep.Accepted.Count, rep.Accepted.P99Ms, rep.Accepted.MaxMs,
		rep.Rejected.Count, rep.Rejected.P99Ms, rep.ClientDropped)

	if rep.AchievedRate < 4*satQPS {
		t.Errorf("achieved %.0f req/s, below 4× the measured %.0f qps saturation — the overload claim does not hold",
			rep.AchievedRate, satQPS)
	}
	if rep.Accepted.Count == 0 {
		t.Fatal("no requests accepted under overload; shedding is not selective")
	}
	shed := rep.StatusCounts["429"] + rep.StatusCounts["503"]
	if shed < rep.Sent/2 {
		t.Errorf("only %d of %d requests shed at 6× saturation; expected the majority", shed, rep.Sent)
	}
	if rep.BadRetryAfter != 0 {
		t.Errorf("%d shed responses had a missing or unparseable Retry-After", rep.BadRetryAfter)
	}
	// Graceful degradation: accepted-work p99 within 3× the unloaded p99.
	// The floor absorbs the multi-× machine-throughput swings a
	// quota-throttled box shows between the two measurement phases (the
	// unloaded baseline and the loaded run are seconds apart and can land
	// in different throttle regimes). 150ms is still 33× below the 5s
	// class deadline — a server that queues accepted work anywhere near
	// its deadline fails regardless of which term is active.
	bound := 3 * unloadedP99
	if bound < 150 {
		bound = 150
	}
	if rep.Accepted.P99Ms > bound {
		t.Errorf("accepted p99 %.2fms exceeds %.2fms (3× unloaded p99 %.2fms): accepted work degraded with load",
			rep.Accepted.P99Ms, bound, unloadedP99)
	}
	// No request outlived its deadline: the class deadline is 5s, the
	// generator's client timeout 8s. A hang would surface as a transport
	// error (client timeout) or an 8s latency; neither may happen.
	if rep.TransportErrors != 0 {
		t.Errorf("%d transport errors: requests timed out client-side past their server deadline", rep.TransportErrors)
	}
	if rep.Accepted.MaxMs > 7000 || rep.Rejected.MaxMs > 7000 {
		t.Errorf("max latency accepted %.0fms / rejected %.0fms exceeds the 5s class deadline plus grace",
			rep.Accepted.MaxMs, rep.Rejected.MaxMs)
	}
	// Rejections must be fail-fast, not queued to their deadline.
	if rep.Rejected.P99Ms > 1000 {
		t.Errorf("rejected p99 %.2fms: shedding is supposed to be immediate", rep.Rejected.P99Ms)
	}

	// The generator is done: the goroutine count must settle back to the
	// pre-load baseline (idle HTTP conns get a small allowance while the
	// server reaps them).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		runtime.GC()
		time.Sleep(100 * time.Millisecond)
	}
}

// TestLoadGraphMode drives graph-mode queries: -build installs an epoch
// after seeding, -mode graph routes every query down the navigated path,
// and the queries must succeed (a 409 would show up as a non-200 status).
func TestLoadGraphMode(t *testing.T) {
	addr, _, shutdown := startTestServer(t, 512, admit.DefaultConfig(), time.Second)
	defer shutdown()

	out := filepath.Join(t.TempDir(), "load.json")
	err := run(context.Background(), []string{
		"-addr", addr, "-bits", "512", "-users", "64",
		"-duration", "1500ms", "-rate", "150", "-mix", "1",
		"-mode", "graph", "-build", "-timeout", "5s",
		"-out", out, "-seed", "5",
	}, io.Discard)
	if err != nil {
		t.Fatalf("knnload run: %v", err)
	}
	rep := readReport(t, out)
	if rep.StatusCounts["200"] == 0 {
		t.Errorf("no graph-mode query succeeded: %v", rep.StatusCounts)
	}
	if rep.StatusCounts["409"] != 0 {
		t.Errorf("%d graph-mode queries hit 409: -build did not install an epoch", rep.StatusCounts["409"])
	}
}

func TestRejectsBadMode(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "localhost:1", "-mode", "hybrid"}, io.Discard)
	if err == nil {
		t.Error("bad -mode accepted")
	}
}
