package main

// Multi-process cluster chaos harness (make clustercheck): real knnserver
// shard PROCESSES — each built with -race, each with its own durable dir
// and WAL — behind an in-process router (so the new cluster machinery
// runs under this test binary's race detector). The harness then proves
// the PR's process-level contract:
//
//   - SIGKILL of 1 of 3 shard processes at 2× the healthy query load
//     loses zero acked mutations: after the process restarts from its
//     WAL and rejoins, every id whose PUT was acked with 204 answers
//     through the router (a 404 would be a lost write);
//   - every query during the outage window either answers 200 with
//     X-Partial-Results admitting the hole or fails the quorum with 503
//     — never a silent partial answer;
//   - after the rejoin, recall@10 returns to within 1% of the healthy
//     baseline;
//   - a fresh shard process joining mid-load triggers a live migration:
//     queries keep full coverage through the dual-read window (no
//     coverage hole), the moved slice lands on the new shard, per-shard
//     live-user counts still partition the corpus exactly (no user lost
//     or duplicated), and recall returns to within 1% of healthy;
//   - a SIGKILL of the gaining shard mid-import resumes after restart —
//     the import journal marks in its WAL surface the interrupted
//     transfer, the router's migration driver re-drives the pull, and
//     the final per-shard counts prove no loss and no duplication.
//
// The measured run lands in BENCH_load.json under "cluster_chaos" and
// "migration".

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/obs"
	"goldfinger/internal/profile"
	"goldfinger/internal/router"
)

// buildServerOnce builds the knnserver binary (race-enabled, so shard
// processes are race-checked too) exactly once per test run.
var buildServerOnce struct {
	sync.Once
	bin string
	err error
}

func serverBinary(t *testing.T) string {
	t.Helper()
	buildServerOnce.Do(func() {
		dir, err := os.MkdirTemp("", "knnserver-bin-")
		if err != nil {
			buildServerOnce.err = err
			return
		}
		bin := filepath.Join(dir, "knnserver")
		cmd := exec.Command("go", "build", "-race", "-o", bin, "goldfinger/cmd/knnserver")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildServerOnce.err = fmt.Errorf("building knnserver: %v\n%s", err, out)
			return
		}
		buildServerOnce.bin = bin
	})
	if buildServerOnce.err != nil {
		t.Fatal(buildServerOnce.err)
	}
	return buildServerOnce.bin
}

// shardProc is one knnserver -role shard OS process.
type shardProc struct {
	name string
	dir  string
	url  string
	cmd  *exec.Cmd
}

// startShardProc execs a shard process and waits for its listen line.
// The process self-registers with the router at routerURL.
func startShardProc(t *testing.T, bin, name, dir, routerURL string, extra ...string) *shardProc {
	t.Helper()
	args := append([]string{
		"-role", "shard", "-name", name, "-addr", "127.0.0.1:0",
		"-bits", "256", "-data-dir", dir, "-fsync", "none", "-join", routerURL,
	}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 && strings.Contains(line, "knnserver shard") {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		sp := &shardProc{name: name, dir: dir, url: "http://" + addr, cmd: cmd}
		t.Cleanup(func() { sp.kill() })
		return sp
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("%s did not report its listen address", name)
		return nil
	}
}

// kill SIGKILLs the process — no graceful shutdown, no WAL seal. Safe to
// call twice.
func (sp *shardProc) kill() {
	if sp.cmd.Process != nil {
		sp.cmd.Process.Kill()
	}
	sp.cmd.Wait()
}

func shardStats(t *testing.T, url string) (live int, ringMode, migPending string, importing bool) {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		return -1, "", "", false
	}
	defer resp.Body.Close()
	var st struct {
		Users            int    `json:"users"`
		DeletedUsers     int    `json:"deleted_users"`
		RingMode         string `json:"ring_mode"`
		MigrationPending string `json:"migration_pending"`
		Importing        bool   `json:"importing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return -1, "", "", false
	}
	return st.Users - st.DeletedUsers, st.RingMode, st.MigrationPending, st.Importing
}

// clusterRing polls the router's /cluster view.
func clusterRing(t *testing.T, base string) (mode string, names []string) {
	t.Helper()
	resp, err := http.Get(base + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cv struct {
		RingMode  string   `json:"ring_mode"`
		RingNames []string `json:"ring_names"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	return cv.RingMode, cv.RingNames
}

func waitForStableRing(t *testing.T, base string, nShards int, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(within)
	for {
		mode, names := clusterRing(t, base)
		if mode == "stable" && len(names) == nShards {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not settle to %d shards stable within %v (at %s %v)", nShards, within, mode, names)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// startClusterRouter runs the routing tier in-process (race-checked by
// this test binary) with chaos-scale timings.
func startClusterRouter(t *testing.T) (*router.Router, string) {
	t.Helper()
	rt, err := router.New(router.Config{
		Quorum:       0.5,
		QueryTimeout: 800 * time.Millisecond,
		HedgeAfter:   25 * time.Millisecond,
		Retries:      1,
		RetryBase:    10 * time.Millisecond,
		Breaker: router.BreakerConfig{
			Window: 32, MinSamples: 4, ErrorRate: 0.5,
			ConsecutiveFails: 3, OpenFor: 500 * time.Millisecond,
			HalfOpenProbes: 1,
		},
		ProbeInterval:  100 * time.Millisecond,
		MigrateTimeout: 90 * time.Second,
		Metrics:        obs.NewRegistry(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	front := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go front.Serve(ln)
	t.Cleanup(func() { front.Close() })
	return rt, "http://" + ln.Addr().String()
}

// clusterChaosJSON is the BENCH_load.json "cluster_chaos" section.
type clusterChaosJSON struct {
	Shards           int            `json:"shard_processes"`
	SeedUsers        int            `json:"seed_users"`
	Bits             int            `json:"bits"`
	K                int            `json:"k"`
	KilledShard      string         `json:"killed_shard"`
	Healthy          chaosPhaseJSON `json:"healthy"`
	Outage           chaosPhaseJSON `json:"outage"`
	Recovered        chaosPhaseJSON `json:"recovered"`
	AckedDuringKill  int            `json:"acked_mutations_during_outage"`
	LostAcked        int            `json:"lost_acked_mutations"`
	RejoinToHealthyS float64        `json:"rejoin_to_healthy_s"`
	MeasuredAt       string         `json:"measured_at"`
}

// migrationJSON is the BENCH_load.json "migration" section (satellite:
// knnload reports transfer duration, dual-read traffic, and recall
// through a live migration).
type migrationJSON struct {
	JoinedShard        string  `json:"joined_shard"`
	MovedUsers         int     `json:"moved_users"`
	TransferMS         float64 `json:"transfer_ms"`
	QueriesDuringDual  int     `json:"queries_during_dual_read"`
	RecallDuringMig    float64 `json:"recall_during_migration"`
	RecallAfterMig     float64 `json:"recall_after_migration"`
	RouterDualReads    int64   `json:"router_dual_reads"`
	RouterFencedWrites int64   `json:"router_fenced_writes"`
	RouterDrift        int64   `json:"router_placement_drift"`
	MeasuredAt         string  `json:"measured_at"`
}

// TestClusterProcessKillChaos is the acceptance test for the
// multi-process shard deployment (make clustercheck). See the file
// comment for the contract it proves.
func TestClusterProcessKillChaos(t *testing.T) {
	bits, k, fetchK := 256, 10, 20
	nUsers, nQuery := 600, 24
	if testing.Short() {
		nUsers, nQuery = 240, 12
	}
	bin := serverBinary(t)
	rt, base := startClusterRouter(t)
	_ = rt

	names := []string{"shard-0", "shard-1", "shard-2"}
	root := t.TempDir()
	procs := make(map[string]*shardProc, len(names))
	for _, name := range names {
		procs[name] = startShardProc(t, bin, name, filepath.Join(root, name), base)
	}
	waitForStableRing(t, base, len(names), 30*time.Second)

	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	// Seed through the router, exactly as clients would.
	rng := rand.New(rand.NewSource(314159))
	scheme := core.MustScheme(bits, 17)
	mkProfile := func() profile.Profile {
		items := make([]profile.ItemID, 0, 24)
		for len(items) < 24 {
			items = append(items, profile.ItemID(rng.Intn(4000)+1))
		}
		return profile.New(items...)
	}
	ids := make([]string, nUsers)
	fps := make([]core.Fingerprint, nUsers)
	fpBlobs := make([][]byte, nUsers)
	put := func(id string, blob []byte) int {
		req, err := http.NewRequest(http.MethodPut, base+"/users/"+id+"/fingerprint", strings.NewReader(string(blob)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < nUsers; i++ {
		ids[i] = fmt.Sprintf("u-%04d", i)
		fps[i] = scheme.Fingerprint(mkProfile())
		var buf strings.Builder
		if err := core.WriteFingerprint(&buf, fps[i]); err != nil {
			t.Fatal(err)
		}
		fpBlobs[i] = []byte(buf.String())
		if status := put(ids[i], fpBlobs[i]); status != http.StatusNoContent {
			t.Fatalf("seed PUT %s: status %d", ids[i], status)
		}
	}

	// Exact ground truth over the seeded corpus. Queries fetch 2k hits and
	// score recall on seeded (u-*) ids only, so mutation-phase writes of
	// fresh m-* ids cannot contaminate the recall measurement.
	corpus, err := core.NewPackedCorpus(bits, fps)
	if err != nil {
		t.Fatal(err)
	}
	qblobs := make([][]byte, nQuery)
	truths := make([]map[string]bool, nQuery)
	for q := 0; q < nQuery; q++ {
		qfp := scheme.Fingerprint(mkProfile())
		var buf strings.Builder
		if err := core.WriteFingerprint(&buf, qfp); err != nil {
			t.Fatal(err)
		}
		qblobs[q] = []byte(buf.String())
		best := knn.TopKRange(nUsers, k, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(qfp, lo, hi, out)
		})
		truths[q] = make(map[string]bool, k)
		for _, b := range best {
			truths[q][ids[b.ID]] = true
		}
	}

	queryOnce := func(q int) (status int, partialHdr string, recall float64, ms float64, err error) {
		start := time.Now()
		resp, err := client.Post(
			fmt.Sprintf("%s/query?k=%d&mode=scan", base, fetchK),
			"application/octet-stream", strings.NewReader(string(qblobs[q])))
		if err != nil {
			return 0, "", 0, 0, err
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		ms = float64(time.Since(start)) / float64(time.Millisecond)
		partialHdr = resp.Header.Get(router.HeaderPartialResults)
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, partialHdr, 0, ms, nil
		}
		var hits []router.Hit
		if err := json.Unmarshal(blob, &hits); err != nil {
			return resp.StatusCode, partialHdr, 0, ms, fmt.Errorf("bad hits: %v", err)
		}
		got, seeded := 0, 0
		for _, h := range hits {
			if !strings.HasPrefix(h.User, "u-") {
				continue
			}
			if seeded++; seeded > k {
				break
			}
			if truths[q][h.User] {
				got++
			}
		}
		return resp.StatusCode, partialHdr, float64(got) / float64(k), ms, nil
	}

	runPhase := func(workers int, d time.Duration, until func() bool) *chaosPhase {
		ph := &chaosPhase{statuses: make(map[int]int), partials: make(map[string]int)}
		var next atomic.Int64
		stop := time.Now().Add(d)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) && (until == nil || !until()) {
					q := int(next.Add(1)) % nQuery
					status, partialHdr, recall, ms, err := queryOnce(q)
					ph.mu.Lock()
					ph.total++
					if err != nil {
						ph.transport++
					} else if status == http.StatusOK {
						ph.ok200++
						ph.lats = append(ph.lats, ms)
						ph.partials[partialHdr]++
						if isPartialCoverage(partialHdr) {
							ph.partial++
						}
						ph.recallSum += recall
					} else {
						ph.statuses[status]++
					}
					ph.mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return ph
	}

	healthy := runPhase(3, 1200*time.Millisecond, nil)
	if healthy.ok200 < healthy.total*95/100 || healthy.transport > 0 {
		t.Fatalf("healthy phase not clean: %d/%d ok, %d transport, statuses %v",
			healthy.ok200, healthy.total, healthy.transport, healthy.statuses)
	}
	if healthy.recall() < 0.9 {
		t.Fatalf("healthy recall %.3f < 0.9", healthy.recall())
	}
	t.Logf("healthy: %d queries, recall %.3f, p99 %.2fms", healthy.total, healthy.recall(), healthy.p99())

	// ---- SIGKILL one shard process at 2× load, mutating as we go. ----
	victim := procs["shard-1"]
	victim.kill()
	t.Logf("SIGKILLed %s (pid was real OS process)", victim.name)

	var ackedMu sync.Mutex
	var acked []string
	mutStop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := 0; ; i++ {
			select {
			case <-mutStop:
				return
			default:
			}
			id := fmt.Sprintf("m-%04d", i)
			if put(id, fpBlobs[i%nUsers]) == http.StatusNoContent {
				ackedMu.Lock()
				acked = append(acked, id)
				ackedMu.Unlock()
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	outage := runPhase(6, 1500*time.Millisecond, nil)
	close(mutStop)
	mutWG.Wait()
	t.Logf("outage: %d queries (%d ok, %d partial, statuses %v, partials %v), recall %.3f; %d mutations acked",
		outage.total, outage.ok200, outage.partial, outage.statuses, outage.partials, outage.recall(), len(acked))

	// Every outage query must either answer 200 admitting the hole or
	// fail the quorum with 503 — nothing else.
	for status, n := range outage.statuses {
		if status != http.StatusServiceUnavailable {
			t.Errorf("%d outage queries answered %d; only 200+partial or quorum-503 are legal", n, status)
		}
	}
	wantPartial := fmt.Sprintf("%d/%d", len(names)-1, len(names))
	if outage.partials[wantPartial] < outage.ok200*9/10 {
		t.Errorf("only %d/%d outage 200s admitted %s coverage (saw %v)",
			outage.partials[wantPartial], outage.ok200, wantPartial, outage.partials)
	}
	if len(acked) == 0 {
		t.Fatal("no mutation was acked during the outage; the live majority must keep accepting writes")
	}

	// ---- Restart the victim from its WAL; it rejoins on a new port. ----
	rejoinStart := time.Now()
	procs[victim.name] = startShardProc(t, bin, victim.name, victim.dir, base)
	var rejoinIn time.Duration
	for {
		resp, err := client.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st router.RouterStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.ShardsHealthy == len(names) {
			rejoinIn = time.Since(rejoinStart)
			break
		}
		if time.Since(rejoinStart) > 20*time.Second {
			t.Fatalf("cluster did not return to %d healthy shards within 20s: %+v", len(names), st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("rejoined to full health in %v", rejoinIn)

	// Zero lost acked mutations: every acked id (and every seeded id) must
	// answer through the router after the restart.
	lost := 0
	for _, id := range append(append([]string{}, ids...), acked...) {
		resp, err := client.Get(base + "/users/" + id + "/neighbors")
		if err != nil {
			t.Fatalf("read-back %s: %v", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			lost++
			t.Errorf("acked user %s is gone after the restart (404)", id)
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked mutations lost to a SIGKILL", lost)
	}

	recovered := runPhase(3, 1200*time.Millisecond, nil)
	t.Logf("recovered: %d queries, recall %.3f", recovered.total, recovered.recall())
	if recovered.recall() < healthy.recall()-0.01 {
		t.Errorf("recovered recall %.3f more than 1%% below healthy %.3f", recovered.recall(), healthy.recall())
	}

	// ---- Fresh shard joins mid-load: live migration, dual-read window. ----
	migRate := 200
	if testing.Short() {
		migRate = 120
	}
	joinStart := time.Now()
	joined := startShardProc(t, bin, "shard-3", filepath.Join(root, "shard-3"), base,
		"-migrate-rate", fmt.Sprint(migRate))
	allNames := append(append([]string{}, names...), "shard-3")
	stableAt := func() bool {
		mode, rn := clusterRing(t, base)
		return mode == "stable" && len(rn) == len(allNames)
	}
	during := runPhase(2, 45*time.Second, stableAt)
	transfer := time.Since(joinStart)
	t.Logf("migration to shard-3: transfer %v; during-migration %d queries (%d ok, statuses %v), recall %.3f",
		transfer, during.total, during.ok200, during.statuses, during.recall())

	// Queries must never lose coverage through the dual-read window.
	if during.ok200 < during.total*98/100 {
		t.Errorf("only %d/%d queries answered 200 during the migration; dual-read must close the coverage hole",
			during.ok200, during.total)
	}
	if during.ok200 > 0 && during.recall() < healthy.recall()-0.02 {
		t.Errorf("recall during migration %.3f fell more than 2%% below healthy %.3f", during.recall(), healthy.recall())
	}

	// The moved slice must land on shard-3 and the per-shard live counts
	// must still partition the corpus exactly (retire is async cleanup —
	// poll until the duplicates are tombstoned).
	wantTotal := nUsers + len(acked)
	expectMoved := 0
	place := router.NewPlacement(allNames, 0)
	for _, id := range append(append([]string{}, ids...), acked...) {
		if place.OwnerName(allNames, id) == "shard-3" {
			expectMoved++
		}
	}
	procs["shard-3"] = joined
	deadline := time.Now().Add(10 * time.Second)
	for {
		total, on3 := 0, 0
		for name, sp := range procs {
			live, _, _, _ := shardStats(t, sp.url)
			if live < 0 {
				total = -1
				break
			}
			total += live
			if name == "shard-3" {
				on3 = live
			}
		}
		if total == wantTotal && on3 == expectMoved {
			t.Logf("post-migration split: %d users total, %d on shard-3 (expected %d)", total, on3, expectMoved)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-migration counts never settled: total %d (want %d), shard-3 %d (want %d)",
				total, wantTotal, on3, expectMoved)
		}
		time.Sleep(100 * time.Millisecond)
	}

	after := runPhase(3, 1200*time.Millisecond, nil)
	t.Logf("post-migration: %d queries, recall %.3f", after.total, after.recall())
	if after.recall() < healthy.recall()-0.01 {
		t.Errorf("post-migration recall %.3f more than 1%% below healthy %.3f", after.recall(), healthy.recall())
	}

	// Router-side migration counters for the BENCH record.
	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rst router.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mergeBenchSections(t, "../../BENCH_load.json", map[string]any{
		"cluster_chaos": clusterChaosJSON{
			Shards: len(names), SeedUsers: nUsers, Bits: bits, K: k,
			KilledShard: victim.name,
			Healthy:     phaseJSON(healthy), Outage: phaseJSON(outage), Recovered: phaseJSON(recovered),
			AckedDuringKill:  len(acked),
			LostAcked:        lost,
			RejoinToHealthyS: time.Since(rejoinStart).Seconds(),
			MeasuredAt:       time.Now().UTC().Format(time.RFC3339),
		},
		"migration": migrationJSON{
			JoinedShard: "shard-3", MovedUsers: expectMoved,
			TransferMS:        float64(transfer) / float64(time.Millisecond),
			QueriesDuringDual: during.total,
			RecallDuringMig:   during.recall(),
			RecallAfterMig:    after.recall(),
			RouterDualReads:   rst.DualReads, RouterFencedWrites: rst.FencedWrites,
			RouterDrift: rst.PlacementDrift,
			MeasuredAt:  time.Now().UTC().Format(time.RFC3339),
		},
	})
}

// TestClusterMigrationCrashResume SIGKILLs the gaining shard in the
// middle of a migration import and proves the transfer resumes after
// restart with no user lost or duplicated: the gainer's WAL carries the
// import-begin journal mark, the router's driver keeps re-driving the
// pull against the restarted process, and the idempotent re-import
// converges to exactly the expected split.
func TestClusterMigrationCrashResume(t *testing.T) {
	bits := 256
	nUsers := 200
	if testing.Short() {
		nUsers = 120
	}
	bin := serverBinary(t)
	_, base := startClusterRouter(t)
	root := t.TempDir()

	loser := startShardProc(t, bin, "shard-0", filepath.Join(root, "shard-0"), base)
	waitForStableRing(t, base, 1, 20*time.Second)

	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	scheme := core.MustScheme(bits, 7)
	ids := make([]string, nUsers)
	for i := range ids {
		ids[i] = fmt.Sprintf("user-%04d", i)
		var buf strings.Builder
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(
			profile.ItemID(i*3+1), profile.ItemID(i*5+2), profile.ItemID(i*7+3)))); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodPut, base+"/users/"+ids[i]+"/fingerprint", strings.NewReader(buf.String()))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed %s: status %d", ids[i], resp.StatusCode)
		}
	}

	// The gainer imports at 40 users/s: a multi-second window in which to
	// land the SIGKILL mid-import.
	gainer := startShardProc(t, bin, "shard-1", filepath.Join(root, "shard-1"), base,
		"-migrate-rate", "40")

	killDeadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, _, importing := shardStats(t, gainer.url); importing {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatal("gainer never reported an import in flight")
		}
		time.Sleep(15 * time.Millisecond)
	}
	gainer.kill()
	t.Log("SIGKILLed the gaining shard mid-import")

	// Restart it from the same durable dir (full import speed this time).
	// Its WAL surfaces the interrupted import; the router re-drives it.
	restarted := startShardProc(t, bin, "shard-1", gainer.dir, base)
	waitForStableRing(t, base, 2, 60*time.Second)

	names := []string{"shard-0", "shard-1"}
	place := router.NewPlacement(names, 0)
	wantMoved := 0
	for _, id := range ids {
		if place.OwnerName(names, id) == "shard-1" {
			wantMoved++
		}
	}
	// Retire is async cleanup after cutover; poll the split.
	deadline := time.Now().Add(15 * time.Second)
	for {
		liveA, _, _, _ := shardStats(t, loser.url)
		liveB, mode, pending, _ := shardStats(t, restarted.url)
		if liveA+liveB == nUsers && liveB == wantMoved && pending == "" && mode == "stable" {
			t.Logf("resumed migration converged: %d + %d users (moved %d), gainer stable with no pending import",
				liveA, liveB, wantMoved)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed migration never converged: loser %d + gainer %d (want %d total, %d moved), mode %q pending %q",
				liveA, liveB, nUsers, wantMoved, mode, pending)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// No user lost: every id answers through the router.
	for _, id := range ids {
		resp, err := client.Get(base + "/users/" + id + "/neighbors")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Errorf("user %s lost across the crashed migration", id)
		}
	}
}
