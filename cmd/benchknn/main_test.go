package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "300", "-k", "5", "-queries", "2", "-qn", "600", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, blob)
	}
	if rep.N != 300 || rep.K != 5 || rep.Bits != 1024 {
		t.Errorf("report params = %+v", rep)
	}
	if rep.BruteForceBuild.BeforeNsOp <= 0 || rep.BruteForceBuild.AfterNsOp <= 0 {
		t.Errorf("missing build timings: %+v", rep.BruteForceBuild)
	}
	if rep.TopKQuery.BeforeNsOp <= 0 || rep.TopKQuery.AfterNsOp <= 0 {
		t.Errorf("missing query timings: %+v", rep.TopKQuery)
	}
	if len(rep.Query) != 1 {
		t.Fatalf("query section has %d entries, want 1", len(rep.Query))
	}
	qb := rep.Query[0]
	if qb.N != 600 || qb.K != 5 {
		t.Errorf("query bench params = %+v", qb)
	}
	if qb.GraphBuildNs <= 0 || qb.ScanP50Ns <= 0 || qb.GraphP50Ns <= 0 {
		t.Errorf("missing query bench timings: %+v", qb)
	}
	if qb.RecallAtK < 0 || qb.RecallAtK > 1 {
		t.Errorf("recall out of range: %+v", qb)
	}
}

func TestRunQueryBenchDisabled(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "300", "-k", "5", "-queries", "2", "-qn", "0", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Query != nil {
		t.Errorf("qn=0 still produced a query section: %+v", rep.Query)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-bits", "0"}, &buf); err == nil {
		t.Error("bits=0 accepted")
	}
}
