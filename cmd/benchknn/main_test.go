package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "300", "-k", "5", "-queries", "2", "-qn", "600", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, blob)
	}
	if rep.N != 300 || rep.K != 5 || rep.Bits != 1024 {
		t.Errorf("report params = %+v", rep)
	}
	if rep.BruteForceBuild.BeforeNsOp <= 0 || rep.BruteForceBuild.AfterNsOp <= 0 {
		t.Errorf("missing build timings: %+v", rep.BruteForceBuild)
	}
	if rep.TopKQuery.BeforeNsOp <= 0 || rep.TopKQuery.AfterNsOp <= 0 {
		t.Errorf("missing query timings: %+v", rep.TopKQuery)
	}
	if len(rep.Query) != 1 {
		t.Fatalf("query section has %d entries, want 1", len(rep.Query))
	}
	qb := rep.Query[0]
	if qb.N != 600 || qb.K != 5 || qb.Builder != "nndescent" {
		t.Errorf("query bench params = %+v", qb)
	}
	if qb.GraphBuildNs <= 0 || qb.ScanP50Ns <= 0 || qb.GraphP50Ns <= 0 {
		t.Errorf("missing query bench timings: %+v", qb)
	}
	if qb.RecallAtK < 0 || qb.RecallAtK > 1 {
		t.Errorf("recall out of range: %+v", qb)
	}
	cb := rep.ClusterBuild
	if cb == nil {
		t.Fatal("missing cluster_build section")
	}
	if cb.N != 600 || cb.K != 5 || cb.SampledUsers <= 0 {
		t.Errorf("cluster bench params = %+v", cb)
	}
	if cb.NNDescent.BuildNs <= 0 || cb.Cluster.BuildNs <= 0 ||
		cb.NNDescent.Comparisons <= 0 || cb.Cluster.Comparisons <= 0 {
		t.Errorf("missing cluster bench timings: %+v", cb)
	}
	for _, bb := range []BuilderBench{cb.NNDescent, cb.Cluster} {
		if bb.Recall < 0 || bb.Recall > 1 || bb.Quality < 0 {
			t.Errorf("%s scores out of range: %+v", bb.Algo, bb)
		}
	}
	if cb.SeededQueries <= 0 ||
		cb.DefaultSeedRecall < 0 || cb.DefaultSeedRecall > 1 ||
		cb.ClusterSeedRecall < 0 || cb.ClusterSeedRecall > 1 {
		t.Errorf("seeding comparison out of range: %+v", cb)
	}
}

func TestRunQueryBenchDisabled(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "300", "-k", "5", "-queries", "2", "-qn", "0", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Query != nil {
		t.Errorf("qn=0 still produced a query section: %+v", rep.Query)
	}
	if rep.ClusterBuild != nil {
		t.Errorf("qn=0 still produced a cluster_build section: %+v", rep.ClusterBuild)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-bits", "0"}, &buf); err == nil {
		t.Error("bits=0 accepted")
	}
}
