// Command benchknn measures the brute-force KNN build and the TopK query
// path on a synthetic SHF corpus, before and after the packed-corpus
// rewrite, and writes the numbers to a JSON file (BENCH_knn.json) so the
// performance trajectory is tracked across PRs.
//
// "Before" is the retained seed implementation: LegacyBruteForce's per-pair
// provider scan for the build, and a per-pair core.Jaccard closure under
// knn.TopK for the query. "After" is the packed path: BruteForce over the
// BatchProvider blocked kernels, and knn.TopKRange streaming
// PackedCorpus.JaccardQueryInto.
//
// The query section compares the two /query serving strategies at scale:
// the exact O(n) packed scan vs greedy navigation of a Hyrec-built KNN
// graph (knn.GraphSearch over its Navigable form), on a community-
// structured corpus from the synthetic dataset generator (graph
// navigation is only meaningful on data with similarity topology; the
// uniform-random corpus above has none). It reports per-mode p50 latency,
// recall against the scan, and the scored/abandoned split.
//
// Usage:
//
//	benchknn -n 10000 -qn 100000 -bits 1024 -k 10 -out BENCH_knn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchknn:", err)
		os.Exit(1)
	}
}

// Pair is one before/after measurement in ns per operation.
type Pair struct {
	BeforeNsOp int64   `json:"before_ns_op"`
	AfterNsOp  int64   `json:"after_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_knn.json schema.
type Report struct {
	N          int    `json:"n"`
	Bits       int    `json:"bits"`
	K          int    `json:"k"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	MeasuredAt string `json:"measured_at"`

	// BruteForceBuild: LegacyBruteForce (per-pair provider scan) vs
	// BruteForce over the packed BatchProvider.
	BruteForceBuild Pair `json:"bruteforce_build"`
	// TopKQuery: per-pair Jaccard closure vs packed range kernel, one
	// external query fingerprint against the full corpus.
	TopKQuery Pair `json:"topk_query"`

	// Query compares exact-scan vs graph-navigated serving per corpus
	// size (one entry per -qn scale; -big adds n=1M).
	Query []QueryBench `json:"query,omitempty"`
}

// QueryBench is one scan-vs-graph serving comparison on a clustered
// corpus of N users.
type QueryBench struct {
	N int `json:"n"`
	K int `json:"k"`
	// GraphBuildNs is the one-off cost the graph path amortizes: the
	// Hyrec build plus symmetrizing it into the navigable form.
	GraphBuildNs int64 `json:"graph_build_ns"`
	// ScanP50Ns / GraphP50Ns are median per-query latencies over the
	// held-out query set.
	ScanP50Ns  int64   `json:"scan_p50_ns"`
	GraphP50Ns int64   `json:"graph_p50_ns"`
	Speedup    float64 `json:"speedup"`
	// RecallAtK is the graph path's mean recall against the exact scan.
	RecallAtK float64 `json:"recall_at_k"`
	// Fallbacks counts queries whose graph result came back short (the
	// service would have served the scan instead).
	Fallbacks int `json:"fallbacks"`
	// AvgHops/AvgScored/AvgAbandoned describe the descent: nodes
	// expanded, exact similarity computations, candidates rejected by the
	// prefix-popcount bound without one.
	AvgHops      float64 `json:"avg_hops"`
	AvgScored    float64 `json:"avg_scored"`
	AvgAbandoned float64 `json:"avg_abandoned"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchknn", flag.ContinueOnError)
	n := fs.Int("n", 10000, "number of synthetic users")
	bits := fs.Int("bits", 1024, "SHF length")
	k := fs.Int("k", 10, "neighborhood size")
	seed := fs.Int64("seed", 42, "random seed")
	reps := fs.Int("reps", 1, "build repetitions (best-of)")
	queries := fs.Int("queries", 30, "query repetitions (best-of)")
	qn := fs.Int("qn", 100000, "scan-vs-graph query bench corpus size (0 disables)")
	big := fs.Bool("big", false, "add an n=1M scan-vs-graph run")
	outPath := fs.String("out", "BENCH_knn.json", "output JSON path ('-' for stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *k < 1 || *reps < 1 || *queries < 1 {
		return fmt.Errorf("need n >= 2, k >= 1, reps >= 1, queries >= 1")
	}
	if *qn != 0 && *qn < 2 {
		return fmt.Errorf("need qn >= 2 (or 0 to disable)")
	}

	rng := rand.New(rand.NewSource(*seed))
	profiles := make([]profile.Profile, *n)
	for i := range profiles {
		items := make([]profile.ItemID, 0, 60)
		for j := 0; j < 60; j++ {
			items = append(items, profile.ItemID(rng.Intn(5000)))
		}
		profiles[i] = profile.New(items...)
	}
	scheme, err := core.NewScheme(*bits, uint64(*seed))
	if err != nil {
		return err
	}
	shf := knn.NewSHFProvider(scheme, profiles)
	corpus := scheme.PackProfiles(profiles, 0)
	fps := scheme.FingerprintAll(profiles)

	rep := Report{
		N:          *n,
		Bits:       *bits,
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MeasuredAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Fprintf(out, "benchknn: n=%d bits=%d k=%d (reps=%d queries=%d)\n", *n, *bits, *k, *reps, *queries)

	var legacyComps, packedComps int64
	legacyNs := bestOf(*reps, func() {
		_, stats := knn.LegacyBruteForce(shf, *k, knn.Options{})
		legacyComps = stats.Comparisons
	})
	packedNs := bestOf(*reps, func() {
		_, stats := knn.BruteForce(shf, *k, knn.Options{})
		packedComps = stats.Comparisons
	})
	if legacyComps != packedComps {
		return fmt.Errorf("comparison counts diverge: legacy %d vs packed %d", legacyComps, packedComps)
	}
	rep.BruteForceBuild = pair(legacyNs, packedNs)
	fmt.Fprintf(out, "  bruteforce build: legacy %v  packed %v  (%.2fx)\n",
		time.Duration(legacyNs), time.Duration(packedNs), rep.BruteForceBuild.Speedup)

	q := scheme.Fingerprint(profiles[0])
	perPairNs := bestOf(*queries, func() {
		knn.TopK(len(fps), *k, 0, func(i int) float64 { return core.Jaccard(q, fps[i]) })
	})
	packedQueryNs := bestOf(*queries, func() {
		knn.TopKRange(corpus.NumUsers(), *k, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(q, lo, hi, out)
		})
	})
	rep.TopKQuery = pair(perPairNs, packedQueryNs)
	fmt.Fprintf(out, "  topk query:       per-pair %v  packed %v  (%.2fx)\n",
		time.Duration(perPairNs), time.Duration(packedQueryNs), rep.TopKQuery.Speedup)

	sizes := []int{}
	if *qn > 0 {
		sizes = append(sizes, *qn)
	}
	if *big {
		sizes = append(sizes, 1_000_000)
	}
	for _, size := range sizes {
		qb, err := queryBench(size, *bits, *k, *queries, *seed, out)
		if err != nil {
			return err
		}
		rep.Query = append(rep.Query, qb)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "-" {
		_, err = out.Write(blob)
		return err
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

// queryBench measures exact-scan vs graph-navigated top-k serving on a
// clustered corpus of size users: NNDescent build + Navigable once, then
// nq held-out queries through both paths, the scan doubling as ground
// truth for the graph path's recall. NNDescent rather than Hyrec: at
// n=100k on this corpus Hyrec's neighbor-of-neighbor gossip converges to
// a graph whose edges have only ~0.16 recall against the exact top-k,
// and no navigation strategy recovers from a near-random graph, while
// NNDescent's reverse-neighbor sampling reaches ~0.85 in the same build
// time.
func queryBench(size, bits, k, nq int, seed int64, out io.Writer) (QueryBench, error) {
	scale := float64(size+nq+2) / float64(dataset.ML10M.Users)
	ds := dataset.Generate(dataset.ML10M, scale, seed)
	if len(ds.Profiles) < size+nq {
		return QueryBench{}, fmt.Errorf("query bench: generator produced %d users, need %d", len(ds.Profiles), size+nq)
	}
	scheme, err := core.NewScheme(bits, uint64(seed))
	if err != nil {
		return QueryBench{}, err
	}
	corpus := scheme.PackProfiles(ds.Profiles[:size], 0)

	fmt.Fprintf(out, "  query bench n=%d: building nndescent graph...\n", size)
	provider := knn.NewPackedSHFProvider(corpus)
	buildStart := time.Now()
	g, _ := knn.NNDescent(provider, k, knn.Options{Seed: seed})
	nav := g.Navigable(provider)
	buildNs := time.Since(buildStart).Nanoseconds()

	qb := QueryBench{N: size, K: k, GraphBuildNs: buildNs}
	scanNs := make([]int64, 0, nq)
	graphNs := make([]int64, 0, nq)
	var recall float64
	for i := 0; i < nq; i++ {
		q := scheme.Fingerprint(ds.Profiles[size+i])

		start := time.Now()
		exact, err := knn.TopKRangeCtx(nil, corpus.NumUsers(), k, 0, func(lo, hi int, dst []float64) {
			corpus.JaccardQueryInto(q, lo, hi, dst)
		})
		scanNs = append(scanNs, time.Since(start).Nanoseconds())
		if err != nil {
			return QueryBench{}, err
		}

		start = time.Now()
		got, stats, err := knn.GraphSearch(nav, corpus.NewQueryScorer(q), k, knn.SearchOptions{})
		graphNs = append(graphNs, time.Since(start).Nanoseconds())
		if err != nil {
			return QueryBench{}, err
		}
		if len(got) < min(k, size) {
			qb.Fallbacks++
		}
		in := make(map[int32]bool, len(got))
		for _, nb := range got {
			in[nb.ID] = true
		}
		hits := 0
		for _, nb := range exact {
			if in[nb.ID] {
				hits++
			}
		}
		if len(exact) > 0 {
			recall += float64(hits) / float64(len(exact))
		} else {
			recall++
		}
		qb.AvgHops += float64(stats.Hops)
		qb.AvgScored += float64(stats.Scored)
		qb.AvgAbandoned += float64(stats.Abandoned)
	}
	qb.RecallAtK = recall / float64(nq)
	qb.AvgHops /= float64(nq)
	qb.AvgScored /= float64(nq)
	qb.AvgAbandoned /= float64(nq)
	qb.ScanP50Ns = median(scanNs)
	qb.GraphP50Ns = median(graphNs)
	if qb.GraphP50Ns > 0 {
		qb.Speedup = float64(qb.ScanP50Ns) / float64(qb.GraphP50Ns)
	}
	fmt.Fprintf(out, "  query n=%d:       scan p50 %v  graph p50 %v  (%.2fx, recall@%d %.3f, %d fallbacks)\n",
		size, time.Duration(qb.ScanP50Ns), time.Duration(qb.GraphP50Ns), qb.Speedup, k, qb.RecallAtK, qb.Fallbacks)
	return qb, nil
}

func median(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

// bestOf runs f reps times and returns the fastest wall-clock run in
// nanoseconds — the standard way to strip scheduler/GC noise from a
// single-number measurement.
func bestOf(reps int, f func()) int64 {
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func pair(before, after int64) Pair {
	p := Pair{BeforeNsOp: before, AfterNsOp: after}
	if after > 0 {
		p.Speedup = float64(before) / float64(after)
	}
	return p
}
