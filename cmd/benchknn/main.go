// Command benchknn measures the brute-force KNN build and the TopK query
// path on a synthetic SHF corpus, before and after the packed-corpus
// rewrite, and writes the numbers to a JSON file (BENCH_knn.json) so the
// performance trajectory is tracked across PRs.
//
// "Before" is the retained seed implementation: LegacyBruteForce's per-pair
// provider scan for the build, and a per-pair core.Jaccard closure under
// knn.TopK for the query. "After" is the packed path: BruteForce over the
// BatchProvider blocked kernels, and knn.TopKRange streaming
// PackedCorpus.JaccardQueryInto.
//
// The cluster_build section compares the two approximate builders at scale
// on one shared community-structured corpus: NNDescent vs the
// cluster-and-conquer builder (fingerprint-hash bucketing, per-cluster
// brute force, multi-view merge + one refinement sweep). Both are scored
// against a sampled exact ground truth for quality (sum-of-similarities
// ratio) and recall (edge overlap). The same section also reports the
// GraphSearch entry-seeding comparison on the cluster-built graph: default
// evenly-spread seeds vs seeds drawn from the query's own cluster buckets.
//
// The query section compares the two /query serving strategies at scale:
// the exact O(n) packed scan vs greedy navigation of a KNN graph
// (knn.GraphSearch over its Navigable form), on the same corpus. It
// reports per-mode p50 latency, recall against the scan, and the
// scored/abandoned split. At -qn scale the graph is the NNDescent build
// from the cluster section; the -big n=1M point uses the cluster builder
// (the only one that finishes in reasonable time at that scale on one
// core) with bucket-derived entry seeds, matching the service's serving
// path for cluster epochs.
//
// Usage:
//
//	benchknn -n 10000 -qn 100000 -bits 1024 -k 10 -out BENCH_knn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"goldfinger/internal/cluster"
	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchknn:", err)
		os.Exit(1)
	}
}

// Pair is one before/after measurement in ns per operation.
type Pair struct {
	BeforeNsOp int64   `json:"before_ns_op"`
	AfterNsOp  int64   `json:"after_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_knn.json schema.
type Report struct {
	N          int    `json:"n"`
	Bits       int    `json:"bits"`
	K          int    `json:"k"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	MeasuredAt string `json:"measured_at"`

	// BruteForceBuild: LegacyBruteForce (per-pair provider scan) vs
	// BruteForce over the packed BatchProvider.
	BruteForceBuild Pair `json:"bruteforce_build"`
	// TopKQuery: per-pair Jaccard closure vs packed range kernel, one
	// external query fingerprint against the full corpus.
	TopKQuery Pair `json:"topk_query"`

	// ClusterBuild compares the approximate builders (NNDescent vs
	// cluster-and-conquer) at -qn scale on the clustered corpus.
	ClusterBuild *ClusterBench `json:"cluster_build,omitempty"`

	// Query compares exact-scan vs graph-navigated serving per corpus
	// size (one entry per -qn scale; -big adds n=1M).
	Query []QueryBench `json:"query,omitempty"`

	// OnlineInsert measures the live-mutation path at -qn scale: per-op
	// latency of online inserts, overwrites and deletes against a built
	// graph under an Online maintainer (the PUT/DELETE serving path).
	OnlineInsert *OnlineBench `json:"online_insert,omitempty"`
}

// OnlineBench is the online-mutation latency section: each op is one
// GraphSearch plus bounded reverse-edge repair, so per-op cost must stay
// flat in n (p99 in single-digit milliseconds at n=100k).
type OnlineBench struct {
	N int `json:"n"`
	K int `json:"k"`

	Inserts     int   `json:"inserts"`
	InsertP50Ns int64 `json:"insert_p50_ns"`
	InsertP99Ns int64 `json:"insert_p99_ns"`
	// AvgComparisons is the mean exact-similarity evaluations one insert
	// spends (search + repair) — the n-independence witness.
	AvgComparisons float64 `json:"avg_comparisons"`

	Overwrites     int   `json:"overwrites"`
	OverwriteP50Ns int64 `json:"overwrite_p50_ns"`
	Deletes        int   `json:"deletes"`
	DeleteP50Ns    int64 `json:"delete_p50_ns"`

	// SnapshotP50Ns is the read-side cost of materializing a fresh flat
	// snapshot after a mutation (lazy, amortized over all readers until
	// the next mutation) — the O(n) copy the mutation path no longer pays.
	SnapshotP50Ns int64 `json:"snapshot_p50_ns"`
}

// BuilderBench is one approximate builder's measurement against the
// sampled exact ground truth.
type BuilderBench struct {
	Algo        string `json:"algo"`
	BuildNs     int64  `json:"build_ns"`
	Comparisons int64  `json:"comparisons"`
	// Quality is the sum of the builder's edge similarities over the sum
	// of the exact top-k's, averaged over the sampled users (1.0 = every
	// sampled neighborhood is as good as exact).
	Quality float64 `json:"quality"`
	// Recall is the sampled mean overlap with the exact top-k edge set.
	Recall float64 `json:"recall"`
}

// ClusterBench is the NNDescent-vs-cluster build comparison plus the
// entry-seeding comparison on the cluster-built graph.
type ClusterBench struct {
	N            int `json:"n"`
	K            int `json:"k"`
	SampledUsers int `json:"sampled_users"`

	NNDescent BuilderBench `json:"nndescent"`
	Cluster   BuilderBench `json:"cluster"`
	// BuildSpeedup is NNDescent build ns over cluster build ns.
	BuildSpeedup float64 `json:"build_speedup"`

	// Entry seeding on the cluster graph: recall and hops of GraphSearch
	// with the default evenly-spread seeds vs seeds drawn from the query
	// fingerprint's own cluster buckets (the service's serving path for
	// cluster epochs).
	SeededQueries     int     `json:"seeded_queries"`
	DefaultSeedRecall float64 `json:"default_seed_recall"`
	ClusterSeedRecall float64 `json:"cluster_seed_recall"`
	DefaultSeedHops   float64 `json:"default_seed_hops"`
	ClusterSeedHops   float64 `json:"cluster_seed_hops"`
}

// QueryBench is one scan-vs-graph serving comparison on a clustered
// corpus of N users.
type QueryBench struct {
	N int `json:"n"`
	K int `json:"k"`
	// Builder is the algorithm that produced the navigated graph.
	Builder string `json:"builder"`
	// GraphBuildNs is the one-off cost the graph path amortizes: the
	// graph build plus symmetrizing it into the navigable form.
	GraphBuildNs int64 `json:"graph_build_ns"`
	// ScanP50Ns / GraphP50Ns are median per-query latencies over the
	// held-out query set.
	ScanP50Ns  int64   `json:"scan_p50_ns"`
	GraphP50Ns int64   `json:"graph_p50_ns"`
	Speedup    float64 `json:"speedup"`
	// RecallAtK is the graph path's mean recall against the exact scan.
	RecallAtK float64 `json:"recall_at_k"`
	// Fallbacks counts queries whose graph result came back short (the
	// service would have served the scan instead).
	Fallbacks int `json:"fallbacks"`
	// AvgHops/AvgScored/AvgAbandoned describe the descent: nodes
	// expanded, exact similarity computations, candidates rejected by the
	// prefix-popcount bound without one.
	AvgHops      float64 `json:"avg_hops"`
	AvgScored    float64 `json:"avg_scored"`
	AvgAbandoned float64 `json:"avg_abandoned"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchknn", flag.ContinueOnError)
	n := fs.Int("n", 10000, "number of synthetic users")
	bits := fs.Int("bits", 1024, "SHF length")
	k := fs.Int("k", 10, "neighborhood size")
	seed := fs.Int64("seed", 42, "random seed")
	reps := fs.Int("reps", 1, "build repetitions (best-of)")
	queries := fs.Int("queries", 30, "query repetitions (best-of)")
	qn := fs.Int("qn", 100000, "cluster-vs-nndescent and scan-vs-graph bench corpus size (0 disables)")
	big := fs.Bool("big", false, "add an n=1M scan-vs-graph run on a cluster-built graph")
	outPath := fs.String("out", "BENCH_knn.json", "output JSON path ('-' for stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *k < 1 || *reps < 1 || *queries < 1 {
		return fmt.Errorf("need n >= 2, k >= 1, reps >= 1, queries >= 1")
	}
	if *qn != 0 && *qn < 2 {
		return fmt.Errorf("need qn >= 2 (or 0 to disable)")
	}

	rng := rand.New(rand.NewSource(*seed))
	profiles := make([]profile.Profile, *n)
	for i := range profiles {
		items := make([]profile.ItemID, 0, 60)
		for j := 0; j < 60; j++ {
			items = append(items, profile.ItemID(rng.Intn(5000)))
		}
		profiles[i] = profile.New(items...)
	}
	scheme, err := core.NewScheme(*bits, uint64(*seed))
	if err != nil {
		return err
	}
	shf := knn.NewSHFProvider(scheme, profiles)
	corpus := scheme.PackProfiles(profiles, 0)
	fps := scheme.FingerprintAll(profiles)

	rep := Report{
		N:          *n,
		Bits:       *bits,
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MeasuredAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Fprintf(out, "benchknn: n=%d bits=%d k=%d (reps=%d queries=%d)\n", *n, *bits, *k, *reps, *queries)

	var legacyComps, packedComps int64
	legacyNs := bestOf(*reps, func() {
		_, stats := knn.LegacyBruteForce(shf, *k, knn.Options{})
		legacyComps = stats.Comparisons
	})
	packedNs := bestOf(*reps, func() {
		_, stats := knn.BruteForce(shf, *k, knn.Options{})
		packedComps = stats.Comparisons
	})
	if legacyComps != packedComps {
		return fmt.Errorf("comparison counts diverge: legacy %d vs packed %d", legacyComps, packedComps)
	}
	rep.BruteForceBuild = pair(legacyNs, packedNs)
	fmt.Fprintf(out, "  bruteforce build: legacy %v  packed %v  (%.2fx)\n",
		time.Duration(legacyNs), time.Duration(packedNs), rep.BruteForceBuild.Speedup)

	q := scheme.Fingerprint(profiles[0])
	perPairNs := bestOf(*queries, func() {
		knn.TopK(len(fps), *k, 0, func(i int) float64 { return core.Jaccard(q, fps[i]) })
	})
	packedQueryNs := bestOf(*queries, func() {
		knn.TopKRange(corpus.NumUsers(), *k, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(q, lo, hi, out)
		})
	})
	rep.TopKQuery = pair(perPairNs, packedQueryNs)
	fmt.Fprintf(out, "  topk query:       per-pair %v  packed %v  (%.2fx)\n",
		time.Duration(perPairNs), time.Duration(packedQueryNs), rep.TopKQuery.Speedup)

	if *qn > 0 {
		bc, err := makeBenchCorpus(*qn, *queries, *bits, *seed, true)
		if err != nil {
			return err
		}
		cb, nnGraph, nnBuildNs, err := clusterBench(bc, *k, *seed, out)
		if err != nil {
			return err
		}
		rep.ClusterBuild = &cb
		qb, err := queryBench(bc, "nndescent", nnGraph, nnBuildNs, nil, *k, out)
		if err != nil {
			return err
		}
		rep.Query = append(rep.Query, qb)
		ob, err := onlineBench(bc, nnGraph, *k, out)
		if err != nil {
			return err
		}
		rep.OnlineInsert = &ob
	}
	if *big {
		bc, err := makeBenchCorpus(1_000_000, *queries, *bits, *seed, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  query bench n=%d: building cluster graph...\n", bc.corpus.NumUsers())
		provider := knn.NewPackedSHFProvider(bc.corpus)
		buildStart := time.Now()
		g, asn, _ := knn.ClusterConquerWith(provider, *k, knn.Options{Seed: *seed}, knn.ClusterConfig{})
		buildNs := time.Since(buildStart).Nanoseconds()
		qb, err := queryBench(bc, "cluster", g, buildNs, asn, *k, out)
		if err != nil {
			return err
		}
		rep.Query = append(rep.Query, qb)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "-" {
		_, err = out.Write(blob)
		return err
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

// benchCorpus is the community-structured corpus shared by the cluster,
// query and online sections at one size: size packed member fingerprints
// plus nq held-out query fingerprints from the same generator. fps holds
// the members' unpacked fingerprints when keepFPs was set (the online
// maintainer needs them; skipped at -big scale to keep peak memory down).
type benchCorpus struct {
	scheme  *core.Scheme
	corpus  *core.PackedCorpus
	queries []core.Fingerprint
	fps     []core.Fingerprint
}

func makeBenchCorpus(size, nq, bits int, seed int64, keepFPs bool) (*benchCorpus, error) {
	scale := float64(size+nq+2) / float64(dataset.ML10M.Users)
	ds := dataset.Generate(dataset.ML10M, scale, seed)
	if len(ds.Profiles) < size+nq {
		return nil, fmt.Errorf("bench corpus: generator produced %d users, need %d", len(ds.Profiles), size+nq)
	}
	scheme, err := core.NewScheme(bits, uint64(seed))
	if err != nil {
		return nil, err
	}
	bc := &benchCorpus{
		scheme:  scheme,
		corpus:  scheme.PackProfiles(ds.Profiles[:size], 0),
		queries: make([]core.Fingerprint, nq),
	}
	for i := range bc.queries {
		bc.queries[i] = scheme.Fingerprint(ds.Profiles[size+i])
	}
	if keepFPs {
		bc.fps = scheme.FingerprintAll(ds.Profiles[:size])
	}
	return bc, nil
}

// groundTruthSample holds the exact (self-excluded) top-k of a sampled
// user, for scoring approximate builders.
type groundTruthSample struct {
	user  int
	exact []knn.Neighbor
}

// sampleGroundTruth computes the exact top-k for up to maxSamples evenly
// spaced users via the packed one-vs-many kernel — O(sample·n) instead of
// the O(n²) full brute force, which at n=100k would dominate the bench.
func sampleGroundTruth(c *core.PackedCorpus, k, maxSamples int) []groundTruthSample {
	n := c.NumUsers()
	s := min(maxSamples, n)
	out := make([]groundTruthSample, 0, s)
	for i := 0; i < s; i++ {
		u := i * n / s
		// k+1 then drop u: the scan includes the user itself at sim 1.
		top := knn.TopKRange(n, k+1, 0, func(lo, hi int, dst []float64) {
			c.JaccardRangeInto(u, lo, hi, dst)
		})
		exact := make([]knn.Neighbor, 0, k)
		for _, nb := range top {
			if int(nb.ID) != u && len(exact) < k {
				exact = append(exact, nb)
			}
		}
		out = append(out, groundTruthSample{user: u, exact: exact})
	}
	return out
}

// scoreBuilder computes sampled quality and recall of a built graph
// against the exact ground truth.
func scoreBuilder(g *knn.Graph, truth []groundTruthSample) (quality, recall float64) {
	if len(truth) == 0 {
		return 1, 1
	}
	for _, gt := range truth {
		var exactSum float64
		in := make(map[int32]bool, len(gt.exact))
		for _, nb := range gt.exact {
			exactSum += nb.Sim
			in[nb.ID] = true
		}
		var gotSum float64
		hits := 0
		for _, nb := range g.Neighbors[gt.user] {
			gotSum += nb.Sim
			if in[nb.ID] {
				hits++
			}
		}
		if exactSum > 0 {
			quality += gotSum / exactSum
		} else {
			quality++
		}
		if len(gt.exact) > 0 {
			recall += float64(hits) / float64(len(gt.exact))
		} else {
			recall++
		}
	}
	quality /= float64(len(truth))
	recall /= float64(len(truth))
	return quality, recall
}

// clusterSeeds mirrors the service's entry seeding for cluster epochs:
// bucket-derived seeds from the query's own clusters plus a small
// evenly-spaced spread as a connectivity hedge.
func clusterSeeds(asn *cluster.Assignment, fp core.Fingerprint, n int) []int32 {
	return knn.DefaultSeeds(asn.Seeds(fp.Bits().Words(), 48), n)
}

// clusterBench builds the corpus's KNN graph with NNDescent and with the
// cluster-and-conquer builder, scores both against the sampled exact
// ground truth, and compares default vs bucket-derived GraphSearch entry
// seeding on the cluster graph. It returns the NNDescent graph (and its
// build time) so the query section can reuse it instead of building twice.
func clusterBench(bc *benchCorpus, k int, seed int64, out io.Writer) (ClusterBench, *knn.Graph, int64, error) {
	size := bc.corpus.NumUsers()
	provider := knn.NewPackedSHFProvider(bc.corpus)

	// Collect before each timed build (as testing.B does) so neither
	// builder pays for the other's garbage on the one available core.
	fmt.Fprintf(out, "  cluster bench n=%d: building nndescent graph...\n", size)
	runtime.GC()
	nnStart := time.Now()
	nnGraph, nnStats := knn.NNDescent(provider, k, knn.Options{Seed: seed})
	nnNs := time.Since(nnStart).Nanoseconds()

	fmt.Fprintf(out, "  cluster bench n=%d: building cluster graph...\n", size)
	runtime.GC()
	clStart := time.Now()
	clGraph, asn, clStats := knn.ClusterConquerWith(provider, k, knn.Options{Seed: seed}, knn.ClusterConfig{})
	clNs := time.Since(clStart).Nanoseconds()

	truth := sampleGroundTruth(bc.corpus, k, 200)
	cb := ClusterBench{
		N: size, K: k, SampledUsers: len(truth),
		NNDescent: BuilderBench{Algo: "nndescent", BuildNs: nnNs, Comparisons: nnStats.Comparisons},
		Cluster:   BuilderBench{Algo: "cluster", BuildNs: clNs, Comparisons: clStats.Comparisons},
	}
	cb.NNDescent.Quality, cb.NNDescent.Recall = scoreBuilder(nnGraph, truth)
	cb.Cluster.Quality, cb.Cluster.Recall = scoreBuilder(clGraph, truth)
	if clNs > 0 {
		cb.BuildSpeedup = float64(nnNs) / float64(clNs)
	}
	fmt.Fprintf(out, "  cluster build:    nndescent %v (q %.3f, r %.3f)  cluster %v (q %.3f, r %.3f)  (%.2fx)\n",
		time.Duration(nnNs), cb.NNDescent.Quality, cb.NNDescent.Recall,
		time.Duration(clNs), cb.Cluster.Quality, cb.Cluster.Recall, cb.BuildSpeedup)

	// Entry seeding: same held-out queries, same cluster graph, recall vs
	// the exact scan under default vs bucket-derived seeds.
	nav := clGraph.Navigable(provider)
	cb.SeededQueries = len(bc.queries)
	for _, fp := range bc.queries {
		exact, err := knn.TopKRangeCtx(nil, size, k, 0, func(lo, hi int, dst []float64) {
			bc.corpus.JaccardQueryInto(fp, lo, hi, dst)
		})
		if err != nil {
			return ClusterBench{}, nil, 0, err
		}
		scorer := bc.corpus.NewQueryScorer(fp)
		def, defStats, err := knn.GraphSearch(nav, scorer, k, knn.SearchOptions{})
		if err != nil {
			return ClusterBench{}, nil, 0, err
		}
		sed, sedStats, err := knn.GraphSearch(nav, scorer, k, knn.SearchOptions{
			Seeds: clusterSeeds(asn, fp, size),
		})
		if err != nil {
			return ClusterBench{}, nil, 0, err
		}
		cb.DefaultSeedRecall += recallOf(def, exact)
		cb.ClusterSeedRecall += recallOf(sed, exact)
		cb.DefaultSeedHops += float64(defStats.Hops)
		cb.ClusterSeedHops += float64(sedStats.Hops)
	}
	if nq := float64(len(bc.queries)); nq > 0 {
		cb.DefaultSeedRecall /= nq
		cb.ClusterSeedRecall /= nq
		cb.DefaultSeedHops /= nq
		cb.ClusterSeedHops /= nq
	}
	fmt.Fprintf(out, "  entry seeding:    default recall %.3f (%.1f hops)  cluster recall %.3f (%.1f hops)\n",
		cb.DefaultSeedRecall, cb.DefaultSeedHops, cb.ClusterSeedRecall, cb.ClusterSeedHops)
	return cb, nnGraph, nnNs, nil
}

func recallOf(got, exact []knn.Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int32]bool, len(got))
	for _, nb := range got {
		in[nb.ID] = true
	}
	hits := 0
	for _, nb := range exact {
		if in[nb.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// queryBench measures exact-scan vs graph-navigated top-k serving on the
// bench corpus: symmetrize the prebuilt graph into its navigable form,
// then run the held-out queries through both paths, the scan doubling as
// ground truth for the graph path's recall. When asn is non-nil the graph
// queries use bucket-derived entry seeds (the service's path for cluster
// epochs); otherwise the default evenly-spread seeds.
func queryBench(bc *benchCorpus, builder string, g *knn.Graph, buildNs int64, asn *cluster.Assignment, k int, out io.Writer) (QueryBench, error) {
	size := bc.corpus.NumUsers()
	provider := knn.NewPackedSHFProvider(bc.corpus)
	navStart := time.Now()
	nav := g.Navigable(provider)
	buildNs += time.Since(navStart).Nanoseconds()

	qb := QueryBench{N: size, K: k, Builder: builder, GraphBuildNs: buildNs}
	nq := len(bc.queries)
	scanNs := make([]int64, 0, nq)
	graphNs := make([]int64, 0, nq)
	var recall float64
	for _, fp := range bc.queries {
		start := time.Now()
		exact, err := knn.TopKRangeCtx(nil, size, k, 0, func(lo, hi int, dst []float64) {
			bc.corpus.JaccardQueryInto(fp, lo, hi, dst)
		})
		scanNs = append(scanNs, time.Since(start).Nanoseconds())
		if err != nil {
			return QueryBench{}, err
		}

		var opts knn.SearchOptions
		if asn != nil {
			opts.Seeds = clusterSeeds(asn, fp, size)
		}
		start = time.Now()
		got, stats, err := knn.GraphSearch(nav, bc.corpus.NewQueryScorer(fp), k, opts)
		graphNs = append(graphNs, time.Since(start).Nanoseconds())
		if err != nil {
			return QueryBench{}, err
		}
		if len(got) < min(k, size) {
			qb.Fallbacks++
		}
		recall += recallOf(got, exact)
		qb.AvgHops += float64(stats.Hops)
		qb.AvgScored += float64(stats.Scored)
		qb.AvgAbandoned += float64(stats.Abandoned)
	}
	qb.RecallAtK = recall / float64(nq)
	qb.AvgHops /= float64(nq)
	qb.AvgScored /= float64(nq)
	qb.AvgAbandoned /= float64(nq)
	qb.ScanP50Ns = median(scanNs)
	qb.GraphP50Ns = median(graphNs)
	if qb.GraphP50Ns > 0 {
		qb.Speedup = float64(qb.ScanP50Ns) / float64(qb.GraphP50Ns)
	}
	fmt.Fprintf(out, "  query n=%d:       scan p50 %v  graph p50 %v  (%.2fx, recall@%d %.3f, %d fallbacks)\n",
		size, time.Duration(qb.ScanP50Ns), time.Duration(qb.GraphP50Ns), qb.Speedup, k, qb.RecallAtK, qb.Fallbacks)
	return qb, nil
}

// onlineBench measures the live-mutation path: an Online maintainer is
// seeded with the prebuilt graph, then timed through a burst of inserts
// (cycling the held-out query fingerprints), overwrites and deletes. Each
// op is a beam search plus bounded reverse-edge repair, so the latencies
// must stay flat in n — p99 insert in single-digit milliseconds at -qn
// 100k is the acceptance bar `make check` watches via benchquery.
func onlineBench(bc *benchCorpus, g *knn.Graph, k int, out io.Writer) (OnlineBench, error) {
	size := bc.corpus.NumUsers()
	if len(bc.fps) != size {
		return OnlineBench{}, fmt.Errorf("online bench: corpus kept %d fingerprints, need %d", len(bc.fps), size)
	}
	o, err := knn.NewOnline(g, nil, append([]core.Fingerprint(nil), bc.fps...), nil, k, uint64(size))
	if err != nil {
		return OnlineBench{}, err
	}

	const targetInserts = 200
	inserts := max(len(bc.queries), min(targetInserts, 4*len(bc.queries)))
	insNs := make([]int64, 0, inserts)
	var comparisons int64
	runtime.GC()
	for i := 0; i < inserts; i++ {
		fp := bc.queries[i%len(bc.queries)]
		start := time.Now()
		_, res := o.Insert(fp)
		insNs = append(insNs, time.Since(start).Nanoseconds())
		comparisons += int64(res.Comparisons)
	}

	nOps := min(100, size/2)
	ovrNs := make([]int64, 0, nOps)
	for i := 0; i < nOps; i++ {
		node := int32(i * size / max(nOps, 1))
		fp := bc.queries[i%len(bc.queries)]
		start := time.Now()
		if _, err := o.Overwrite(node, fp); err != nil {
			return OnlineBench{}, err
		}
		ovrNs = append(ovrNs, time.Since(start).Nanoseconds())
	}
	nDel := min(nOps, inserts)
	delNs := make([]int64, 0, nDel)
	snapNs := make([]int64, 0, nDel)
	for i := 0; i < nDel; i++ {
		node := int32(size + i) // the freshly inserted nodes
		start := time.Now()
		if _, err := o.Delete(node); err != nil {
			return OnlineBench{}, err
		}
		delNs = append(delNs, time.Since(start).Nanoseconds())
		// Each delete invalidates the cached snapshot, so this times a
		// real materialization, not the cached fast path.
		start = time.Now()
		o.Snapshot()
		snapNs = append(snapNs, time.Since(start).Nanoseconds())
	}

	ob := OnlineBench{
		N: size, K: k,
		Inserts:        inserts,
		InsertP50Ns:    median(insNs),
		InsertP99Ns:    percentile(insNs, 99),
		AvgComparisons: float64(comparisons) / float64(inserts),
		Overwrites:     nOps,
		OverwriteP50Ns: median(ovrNs),
		Deletes:        nDel,
		DeleteP50Ns:    median(delNs),
		SnapshotP50Ns:  median(snapNs),
	}
	fmt.Fprintf(out, "  online n=%d:      insert p50 %v p99 %v (%.0f cmps)  overwrite p50 %v  delete p50 %v  snapshot p50 %v\n",
		size, time.Duration(ob.InsertP50Ns), time.Duration(ob.InsertP99Ns), ob.AvgComparisons,
		time.Duration(ob.OverwriteP50Ns), time.Duration(ob.DeleteP50Ns), time.Duration(ob.SnapshotP50Ns))
	return ob, nil
}

// percentile returns the p-th percentile (nearest-rank) of ns; sorts in
// place.
func percentile(ns []int64, p int) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := len(ns) * p / 100
	if idx >= len(ns) {
		idx = len(ns) - 1
	}
	return ns[idx]
}

func median(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

// bestOf runs f reps times and returns the fastest wall-clock run in
// nanoseconds — the standard way to strip scheduler/GC noise from a
// single-number measurement.
func bestOf(reps int, f func()) int64 {
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func pair(before, after int64) Pair {
	p := Pair{BeforeNsOp: before, AfterNsOp: after}
	if after > 0 {
		p.Speedup = float64(before) / float64(after)
	}
	return p
}
