// Command benchknn measures the brute-force KNN build and the TopK query
// path on a synthetic SHF corpus, before and after the packed-corpus
// rewrite, and writes the numbers to a JSON file (BENCH_knn.json) so the
// performance trajectory is tracked across PRs.
//
// "Before" is the retained seed implementation: LegacyBruteForce's per-pair
// provider scan for the build, and a per-pair core.Jaccard closure under
// knn.TopK for the query. "After" is the packed path: BruteForce over the
// BatchProvider blocked kernels, and knn.TopKRange streaming
// PackedCorpus.JaccardQueryInto.
//
// Usage:
//
//	benchknn -n 10000 -bits 1024 -k 10 -out BENCH_knn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/knn"
	"goldfinger/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchknn:", err)
		os.Exit(1)
	}
}

// Pair is one before/after measurement in ns per operation.
type Pair struct {
	BeforeNsOp int64   `json:"before_ns_op"`
	AfterNsOp  int64   `json:"after_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_knn.json schema.
type Report struct {
	N          int    `json:"n"`
	Bits       int    `json:"bits"`
	K          int    `json:"k"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	MeasuredAt string `json:"measured_at"`

	// BruteForceBuild: LegacyBruteForce (per-pair provider scan) vs
	// BruteForce over the packed BatchProvider.
	BruteForceBuild Pair `json:"bruteforce_build"`
	// TopKQuery: per-pair Jaccard closure vs packed range kernel, one
	// external query fingerprint against the full corpus.
	TopKQuery Pair `json:"topk_query"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchknn", flag.ContinueOnError)
	n := fs.Int("n", 10000, "number of synthetic users")
	bits := fs.Int("bits", 1024, "SHF length")
	k := fs.Int("k", 10, "neighborhood size")
	seed := fs.Int64("seed", 42, "random seed")
	reps := fs.Int("reps", 1, "build repetitions (best-of)")
	queries := fs.Int("queries", 30, "query repetitions (best-of)")
	outPath := fs.String("out", "BENCH_knn.json", "output JSON path ('-' for stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *k < 1 || *reps < 1 || *queries < 1 {
		return fmt.Errorf("need n >= 2, k >= 1, reps >= 1, queries >= 1")
	}

	rng := rand.New(rand.NewSource(*seed))
	profiles := make([]profile.Profile, *n)
	for i := range profiles {
		items := make([]profile.ItemID, 0, 60)
		for j := 0; j < 60; j++ {
			items = append(items, profile.ItemID(rng.Intn(5000)))
		}
		profiles[i] = profile.New(items...)
	}
	scheme, err := core.NewScheme(*bits, uint64(*seed))
	if err != nil {
		return err
	}
	shf := knn.NewSHFProvider(scheme, profiles)
	corpus := scheme.PackProfiles(profiles, 0)
	fps := scheme.FingerprintAll(profiles)

	rep := Report{
		N:          *n,
		Bits:       *bits,
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MeasuredAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Fprintf(out, "benchknn: n=%d bits=%d k=%d (reps=%d queries=%d)\n", *n, *bits, *k, *reps, *queries)

	var legacyComps, packedComps int64
	legacyNs := bestOf(*reps, func() {
		_, stats := knn.LegacyBruteForce(shf, *k, knn.Options{})
		legacyComps = stats.Comparisons
	})
	packedNs := bestOf(*reps, func() {
		_, stats := knn.BruteForce(shf, *k, knn.Options{})
		packedComps = stats.Comparisons
	})
	if legacyComps != packedComps {
		return fmt.Errorf("comparison counts diverge: legacy %d vs packed %d", legacyComps, packedComps)
	}
	rep.BruteForceBuild = pair(legacyNs, packedNs)
	fmt.Fprintf(out, "  bruteforce build: legacy %v  packed %v  (%.2fx)\n",
		time.Duration(legacyNs), time.Duration(packedNs), rep.BruteForceBuild.Speedup)

	q := scheme.Fingerprint(profiles[0])
	perPairNs := bestOf(*queries, func() {
		knn.TopK(len(fps), *k, 0, func(i int) float64 { return core.Jaccard(q, fps[i]) })
	})
	packedQueryNs := bestOf(*queries, func() {
		knn.TopKRange(corpus.NumUsers(), *k, 0, func(lo, hi int, out []float64) {
			corpus.JaccardQueryInto(q, lo, hi, out)
		})
	})
	rep.TopKQuery = pair(perPairNs, packedQueryNs)
	fmt.Fprintf(out, "  topk query:       per-pair %v  packed %v  (%.2fx)\n",
		time.Duration(perPairNs), time.Duration(packedQueryNs), rep.TopKQuery.Speedup)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "-" {
		_, err = out.Write(blob)
		return err
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

// bestOf runs f reps times and returns the fastest wall-clock run in
// nanoseconds — the standard way to strip scheduler/GC noise from a
// single-number measurement.
func bestOf(reps int, f func()) int64 {
	best := int64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func pair(before, after int64) Pair {
	p := Pair{BeforeNsOp: before, AfterNsOp: after}
	if after > 0 {
		p.Speedup = float64(before) / float64(after)
	}
	return p
}
