// Command knnserver runs the untrusted KNN-construction service of the
// paper's §2.5 deployment: clients fingerprint their profiles locally and
// upload only the SHFs; this server builds and serves the KNN graph without
// ever seeing a profile in clear text.
//
// Endpoints:
//
//	PUT    /users/{id}/fingerprint   upload a binary SHF (internal/core codec)
//	DELETE /users/{id}/fingerprint   tombstone a user (204; reads answer 410)
//	POST   /graph/build?k=30&algo=hyrec
//	DELETE /graph/build              cancel the in-flight build (alias: /build)
//	GET    /users/{id}/neighbors
//	POST   /query?k=10               top-k users for an uploaded fingerprint
//	GET    /stats, GET /healthz
//	GET    /metrics                  JSON metrics snapshot (internal/obs)
//	GET    /debug/pprof/*            runtime profiles (heap, cpu, goroutine, ...)
//
// # Graph epochs
//
// Each successful POST /graph/build produces a new graph epoch, and the
// epoch then tracks mutations online: uploads, overwrites and deletes
// apply to the live graph immediately instead of pinning it stale until
// the next rebuild. Construction runs outside any lock, so uploads,
// neighborhood reads and queries all proceed at full speed while a build
// is running. The contract:
//
//   - A user uploaded after the epoch was built is inserted into the live
//     graph (greedy search for its neighborhood, reverse-edge repair with
//     a diversity-pruned degree cap) and is immediately visible to
//     GET /users/{id}/neighbors and graph-mode queries — no 409, no
//     rebuild required. Re-uploads rewire the user's neighborhood in
//     place.
//   - DELETE /users/{id}/fingerprint tombstones the user: subsequent
//     reads answer 410 Gone, queries and neighbor lists never return the
//     user, and the graph repairs around the hole lazily. A later re-PUT
//     of the same id revives it.
//   - Periodic rebuilds are still worthwhile (they restore batch-quality
//     edges and compact tombstones) but are a background optimization,
//     not a visibility requirement. GET /stats reports graph_stale only
//     in the legacy frozen-epoch mode.
//   - At most one build runs at a time: a concurrent POST /graph/build gets
//     409 Conflict with a Retry-After header instead of queuing. The
//     publish path drains mutations accepted during the build so nothing
//     is lost at the swap.
//   - GET /stats exposes the epoch sequence number, the user count, the
//     algorithm, the build duration and comparison count of the current
//     epoch, the online node/live/tombstone counts, and build_running
//     plus the live phase/progress while a construction is in flight.
//
// # Cancellation and deadlines
//
// Builds are cancellable: DELETE /graph/build aborts the in-flight build
// within one scan block, and -build-timeout imposes the same abort as a
// deadline on every build. Either way nothing is published — the previous
// epoch keeps serving all reads — and the aborted POST reports 409
// (canceled) or 504 (timed out).
//
// Fingerprint bodies (uploads and queries) are bounded to the exact wire
// size of one fingerprint at the configured -bits; oversized bodies get
// 413 and trailing bytes after a valid SHF get 400.
//
// # Durability
//
// With -data-dir set, accepted uploads are written to a write-ahead log
// before the 204 is sent, successful builds persist their epoch, and the
// WAL is periodically compacted into checksummed snapshots. On startup the
// server recovers the newest valid snapshot plus the WAL tail — acked
// uploads and the last published epoch survive a SIGKILL; a torn WAL tail
// is truncated (logged, counted in the recovery metrics) and corrupt
// snapshot files are quarantined with a .corrupt suffix rather than
// crashing the server. -fsync picks the append durability: "always"
// (default; fsync per upload — an acked PUT survives power loss) or "none"
// (OS page cache decides; survives process death, not power loss).
//
// If the data dir stops accepting writes at runtime the server degrades to
// read-only: uploads get 503 + Retry-After while neighbor reads and
// queries keep serving from memory (see GET /healthz and the degraded
// field of GET /stats). Without -data-dir state is in-memory only, exactly
// as before.
//
// # Overload behavior
//
// Every endpoint passes per-class admission control (cheap reads, expensive
// queries, mutating writes) before touching the corpus: each class has a
// concurrency limit and a bounded wait queue, every admitted request runs
// under a context deadline, and excess load is shed fail-fast with 429/503
// plus a computed Retry-After instead of queueing without bound. Clients
// may lower (never raise) their deadline with an X-Request-Timeout header.
// -max-inflight-queries, -query-timeout and -rate-limit tune the limits;
// /healthz and /stats report shedding distinctly from durability
// degradation. The http.Server itself is hardened against slow and abusive
// clients with -read-timeout, -write-timeout, -idle-timeout and
// -max-header-bytes. /healthz, /debug/pprof and DELETE /graph/build bypass
// admission: probes and load relief must keep working while overloaded.
//
// Usage:
//
//	knnserver -addr :8080 -bits 1024 -build-timeout 5m -data-dir /var/lib/knn -fsync always \
//	  -max-inflight-queries 32 -query-timeout 5s -rate-limit 2000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/durable"
	"goldfinger/internal/obs"
	"goldfinger/internal/router"
	"goldfinger/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "knnserver:", err)
		os.Exit(1)
	}
}

// run parses args, starts the server, and serves until ctx is canceled
// (then shuts down gracefully). When ready is non-nil it is called with
// the bound listen address once the listener is up — tests use it with
// -addr 127.0.0.1:0.
func run(ctx context.Context, args []string, logw io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("knnserver", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	bits := fs.Int("bits", 1024, "accepted fingerprint length")
	buildTimeout := fs.Duration("build-timeout", 0,
		"abort graph builds running longer than this (0 disables the deadline)")
	dataDir := fs.String("data-dir", "",
		"directory for the WAL and snapshots (empty: in-memory only, state dies with the process)")
	fsyncMode := fs.String("fsync", "always",
		"WAL fsync policy: always (acked uploads survive power loss) or none (page cache decides)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"maximum duration for reading an entire request, body included (0 disables; slow-loris guard)")
	writeTimeout := fs.Duration("write-timeout", time.Minute,
		"maximum duration for writing a response (0 disables; graph builds extend their own deadline)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute,
		"how long an idle keep-alive connection is kept open (0 disables)")
	maxHeaderBytes := fs.Int("max-header-bytes", 64<<10,
		"maximum request header size in bytes (0 uses the net/http default)")
	maxInflightQueries := fs.Int("max-inflight-queries", 0,
		"concurrent /query executions before queueing (0 uses the default, 2×GOMAXPROCS)")
	queryTimeout := fs.Duration("query-timeout", 10*time.Second,
		"per-request deadline for /query, admission queue included (0 disables; clients can lower it with X-Request-Timeout)")
	rateLimit := fs.Float64("rate-limit", 0,
		"global request rate limit in requests/second, enforced with a token bucket (0 disables)")
	clusterViews := fs.Int("cluster-views", 0,
		"independent clustering views for algo=cluster builds (0 uses the default)")
	clusterMaxSize := fs.Int("cluster-max-size", 0,
		"maximum cluster size for algo=cluster builds; oversized buckets are split recursively (0 uses the default)")
	shards := fs.Int("shards", 1,
		"run this many in-process shard-cores behind a scatter-gather router on -addr (1: classic single node)")
	quorum := fs.Float64("quorum", 0.5,
		"sharded mode: minimum fraction of shards that must answer a /query for a 200; below it the router answers 503 with Retry-After")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"sharded mode: wait this long before hedging a duplicate request at a straggler shard (0: adaptive, 2× the shard's windowed p99; negative disables hedging)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *buildTimeout < 0 {
		return fmt.Errorf("-build-timeout must be non-negative, got %s", *buildTimeout)
	}
	for _, f := range []struct {
		name string
		val  time.Duration
	}{
		{"-read-timeout", *readTimeout},
		{"-write-timeout", *writeTimeout},
		{"-idle-timeout", *idleTimeout},
		{"-query-timeout", *queryTimeout},
	} {
		if f.val < 0 {
			return fmt.Errorf("%s must be non-negative, got %s", f.name, f.val)
		}
	}
	if *maxHeaderBytes < 0 {
		return fmt.Errorf("-max-header-bytes must be non-negative, got %d", *maxHeaderBytes)
	}
	if *maxInflightQueries < 0 {
		return fmt.Errorf("-max-inflight-queries must be non-negative, got %d", *maxInflightQueries)
	}
	if *rateLimit < 0 {
		return fmt.Errorf("-rate-limit must be non-negative, got %g", *rateLimit)
	}
	if *clusterViews < 0 {
		return fmt.Errorf("-cluster-views must be non-negative, got %d", *clusterViews)
	}
	if *clusterMaxSize < 0 {
		return fmt.Errorf("-cluster-max-size must be non-negative, got %d", *clusterMaxSize)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *quorum <= 0 || *quorum > 1 {
		return fmt.Errorf("-quorum must be in (0, 1], got %g", *quorum)
	}
	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}

	logger := log.New(logw, "", log.LstdFlags)
	if *shards > 1 {
		return runSharded(ctx, shardedParams{
			addr:           *addr,
			bits:           *bits,
			shards:         *shards,
			quorum:         *quorum,
			hedgeAfter:     *hedgeAfter,
			buildTimeout:   *buildTimeout,
			dataDir:        *dataDir,
			fsync:          fsyncPolicy,
			readTimeout:    *readTimeout,
			writeTimeout:   *writeTimeout,
			idleTimeout:    *idleTimeout,
			maxHeaderBytes: *maxHeaderBytes,
			maxInflight:    *maxInflightQueries,
			queryTimeout:   *queryTimeout,
			rateLimit:      *rateLimit,
			clusterViews:   *clusterViews,
			clusterMaxSize: *clusterMaxSize,
		}, logger, ready)
	}

	srv, err := service.NewServer(*bits)
	if err != nil {
		return err
	}
	srv.SetBuildTimeout(*buildTimeout)
	srv.SetClusterConfig(*clusterViews, *clusterMaxSize)

	srv.SetAdmission(admissionConfig(*maxInflightQueries, *queryTimeout, *rateLimit))

	var store *durable.Store
	if *dataDir != "" {
		st, rec, err := durable.Open(durable.Options{
			Dir:     *dataDir,
			Fsync:   fsyncPolicy,
			Metrics: srv.Metrics(),
			Logf:    logger.Printf,
		})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
		if err := srv.UseStore(st, rec); err != nil {
			st.Close()
			return err
		}
		store = st
		epoch := int64(0)
		if rec.Epoch != nil {
			epoch = rec.Epoch.Seq
		}
		logger.Printf("recovered %d users from %s (epoch %d, %d WAL records replayed, %d bytes dropped, %d files quarantined)",
			len(rec.State.Users), *dataDir, epoch, rec.RecordsReplayed, rec.BytesDropped, len(rec.Quarantined))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("knnserver listening on %s (fingerprints: %d bits, build timeout: %s)",
		ln.Addr(), *bits, *buildTimeout)
	if ready != nil {
		ready(ln.Addr().String())
	}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		if store != nil {
			store.Close()
		}
		return err
	}
	// Graceful shutdown: seal the active WAL segment so the next start
	// replays a cleanly-synced tail. Crash-stops skip this path by design —
	// that is what recovery is for.
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("closing durable store: %v", err)
		}
	}
	return nil
}

// admissionConfig derives the admission configuration the flags select.
func admissionConfig(maxInflightQueries int, queryTimeout time.Duration, rateLimit float64) admit.Config {
	cfg := admit.DefaultConfig()
	if maxInflightQueries > 0 {
		cfg.Query.MaxInflight = maxInflightQueries
		cfg.Query.MaxQueue = 4 * maxInflightQueries
	}
	cfg.Query.Timeout = queryTimeout
	if rateLimit > 0 {
		cfg.Rate = rateLimit
		// One second of burst headroom so well-behaved clients with bursty
		// arrivals are not clipped at the average rate.
		cfg.Burst = rateLimit
	}
	return cfg
}

// shardedParams carries the parsed flags into sharded mode.
type shardedParams struct {
	addr           string
	bits           int
	shards         int
	quorum         float64
	hedgeAfter     time.Duration
	buildTimeout   time.Duration
	dataDir        string
	fsync          durable.FsyncPolicy
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration
	maxHeaderBytes int
	maxInflight    int
	queryTimeout   time.Duration
	rateLimit      float64
	clusterViews   int
	clusterMaxSize int
}

// runSharded boots -shards in-process shard-cores, each a full knnserver
// service owning a consistent-hash slice of the user ids, listening on its
// own loopback port with real HTTP between the tiers — the router speaks
// to them exactly as it would to remote shards. The scatter-gather router
// serves -addr with the same endpoint surface as a single node.
func runSharded(ctx context.Context, p shardedParams, logger *log.Logger, ready func(addr string)) error {
	names := make([]string, p.shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	// Shard-cores and router derive ownership from the same deterministic
	// placement, so a shard can answer 421 for ids the router would never
	// send it — misrouting is loud, not silent.
	place := router.NewPlacement(names, 0)

	var (
		specs     []router.ShardSpec
		shardSrvs []*http.Server
		stores    []*durable.Store
		closers   []func()
	)
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	for i := 0; i < p.shards; i++ {
		srv, err := service.NewServer(p.bits)
		if err != nil {
			cleanup()
			return err
		}
		srv.SetBuildTimeout(p.buildTimeout)
		srv.SetClusterConfig(p.clusterViews, p.clusterMaxSize)
		srv.SetAdmission(admissionConfig(p.maxInflight, p.queryTimeout, p.rateLimit))
		idx := i
		srv.SetShard(names[i], func(id string) bool { return place.Owner(id) == idx })
		if p.dataDir != "" {
			dir := filepath.Join(p.dataDir, names[i])
			if err := os.MkdirAll(dir, 0o755); err != nil {
				cleanup()
				return fmt.Errorf("creating shard data dir %s: %w", dir, err)
			}
			st, rec, err := durable.Open(durable.Options{
				Dir:     dir,
				Fsync:   p.fsync,
				Metrics: srv.Metrics(),
				Logf:    logger.Printf,
			})
			if err != nil {
				cleanup()
				return fmt.Errorf("opening shard data dir %s: %w", dir, err)
			}
			if err := srv.UseStore(st, rec); err != nil {
				st.Close()
				cleanup()
				return err
			}
			stores = append(stores, st)
			closers = append(closers, func() { st.Close() })
			logger.Printf("%s: recovered %d users from %s (%d WAL records replayed)",
				names[i], len(rec.State.Users), dir, rec.RecordsReplayed)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return fmt.Errorf("listening for %s: %w", names[i], err)
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       p.readTimeout,
			WriteTimeout:      p.writeTimeout,
			IdleTimeout:       p.idleTimeout,
			MaxHeaderBytes:    p.maxHeaderBytes,
		}
		shardSrvs = append(shardSrvs, hs)
		closers = append(closers, func() { hs.Close() })
		name := names[i]
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("%s: serve: %v", name, err)
			}
		}()
		specs = append(specs, router.ShardSpec{Name: names[i], URL: "http://" + ln.Addr().String()})
		logger.Printf("%s listening on %s", names[i], ln.Addr())
	}

	rt, err := router.New(router.Config{
		Shards:       specs,
		Quorum:       p.quorum,
		QueryTimeout: p.queryTimeout,
		HedgeAfter:   p.hedgeAfter,
		Metrics:      obs.NewRegistry(),
		Logf:         logger.Printf,
	})
	if err != nil {
		cleanup()
		return err
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		rt.Close()
		cleanup()
		return err
	}
	front := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       p.readTimeout,
		WriteTimeout:      p.writeTimeout,
		IdleTimeout:       p.idleTimeout,
		MaxHeaderBytes:    p.maxHeaderBytes,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := front.Shutdown(shutdownCtx); err != nil {
			logger.Printf("router shutdown: %v", err)
		}
	}()

	logger.Printf("knnserver router listening on %s (%d shards, quorum %g, fingerprints: %d bits)",
		ln.Addr(), p.shards, p.quorum, p.bits)
	if ready != nil {
		ready(ln.Addr().String())
	}
	serveErr := front.Serve(ln)
	rt.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, hs := range shardSrvs {
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("%s shutdown: %v", names[i], err)
		}
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			logger.Printf("closing shard store: %v", err)
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
