// Command knnserver runs the untrusted KNN-construction service of the
// paper's §2.5 deployment: clients fingerprint their profiles locally and
// upload only the SHFs; this server builds and serves the KNN graph without
// ever seeing a profile in clear text.
//
// Endpoints:
//
//	PUT    /users/{id}/fingerprint   upload a binary SHF (internal/core codec)
//	DELETE /users/{id}/fingerprint   tombstone a user (204; reads answer 410)
//	POST   /graph/build?k=30&algo=hyrec
//	DELETE /graph/build              cancel the in-flight build (alias: /build)
//	GET    /users/{id}/neighbors
//	POST   /query?k=10               top-k users for an uploaded fingerprint
//	GET    /stats, GET /healthz
//	GET    /metrics                  JSON metrics snapshot (internal/obs)
//	GET    /debug/pprof/*            runtime profiles (heap, cpu, goroutine, ...)
//
// # Graph epochs
//
// Each successful POST /graph/build produces a new graph epoch, and the
// epoch then tracks mutations online: uploads, overwrites and deletes
// apply to the live graph immediately instead of pinning it stale until
// the next rebuild. Construction runs outside any lock, so uploads,
// neighborhood reads and queries all proceed at full speed while a build
// is running. The contract:
//
//   - A user uploaded after the epoch was built is inserted into the live
//     graph (greedy search for its neighborhood, reverse-edge repair with
//     a diversity-pruned degree cap) and is immediately visible to
//     GET /users/{id}/neighbors and graph-mode queries — no 409, no
//     rebuild required. Re-uploads rewire the user's neighborhood in
//     place.
//   - DELETE /users/{id}/fingerprint tombstones the user: subsequent
//     reads answer 410 Gone, queries and neighbor lists never return the
//     user, and the graph repairs around the hole lazily. A later re-PUT
//     of the same id revives it.
//   - Periodic rebuilds are still worthwhile (they restore batch-quality
//     edges and compact tombstones) but are a background optimization,
//     not a visibility requirement. GET /stats reports graph_stale only
//     in the legacy frozen-epoch mode.
//   - At most one build runs at a time: a concurrent POST /graph/build gets
//     409 Conflict with a Retry-After header instead of queuing. The
//     publish path drains mutations accepted during the build so nothing
//     is lost at the swap.
//   - GET /stats exposes the epoch sequence number, the user count, the
//     algorithm, the build duration and comparison count of the current
//     epoch, the online node/live/tombstone counts, and build_running
//     plus the live phase/progress while a construction is in flight.
//
// # Cancellation and deadlines
//
// Builds are cancellable: DELETE /graph/build aborts the in-flight build
// within one scan block, and -build-timeout imposes the same abort as a
// deadline on every build. Either way nothing is published — the previous
// epoch keeps serving all reads — and the aborted POST reports 409
// (canceled) or 504 (timed out).
//
// Fingerprint bodies (uploads and queries) are bounded to the exact wire
// size of one fingerprint at the configured -bits; oversized bodies get
// 413 and trailing bytes after a valid SHF get 400.
//
// # Durability
//
// With -data-dir set, accepted uploads are written to a write-ahead log
// before the 204 is sent, successful builds persist their epoch, and the
// WAL is periodically compacted into checksummed snapshots. On startup the
// server recovers the newest valid snapshot plus the WAL tail — acked
// uploads and the last published epoch survive a SIGKILL; a torn WAL tail
// is truncated (logged, counted in the recovery metrics) and corrupt
// snapshot files are quarantined with a .corrupt suffix rather than
// crashing the server. -fsync picks the append durability: "always"
// (default; fsync per upload — an acked PUT survives power loss) or "none"
// (OS page cache decides; survives process death, not power loss).
//
// If the data dir stops accepting writes at runtime the server degrades to
// read-only: uploads get 503 + Retry-After while neighbor reads and
// queries keep serving from memory (see GET /healthz and the degraded
// field of GET /stats). Without -data-dir state is in-memory only, exactly
// as before.
//
// # Overload behavior
//
// Every endpoint passes per-class admission control (cheap reads, expensive
// queries, mutating writes) before touching the corpus: each class has a
// concurrency limit and a bounded wait queue, every admitted request runs
// under a context deadline, and excess load is shed fail-fast with 429/503
// plus a computed Retry-After instead of queueing without bound. Clients
// may lower (never raise) their deadline with an X-Request-Timeout header.
// -max-inflight-queries, -query-timeout and -rate-limit tune the limits;
// /healthz and /stats report shedding distinctly from durability
// degradation. The http.Server itself is hardened against slow and abusive
// clients with -read-timeout, -write-timeout, -idle-timeout and
// -max-header-bytes. /healthz, /debug/pprof and DELETE /graph/build bypass
// admission: probes and load relief must keep working while overloaded.
//
// Usage:
//
//	knnserver -addr :8080 -bits 1024 -build-timeout 5m -data-dir /var/lib/knn -fsync always \
//	  -max-inflight-queries 32 -query-timeout 5s -rate-limit 2000
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"goldfinger/internal/admit"
	"goldfinger/internal/durable"
	"goldfinger/internal/obs"
	"goldfinger/internal/router"
	"goldfinger/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "knnserver:", err)
		os.Exit(1)
	}
}

// run parses args, starts the server, and serves until ctx is canceled
// (then shuts down gracefully). When ready is non-nil it is called with
// the bound listen address once the listener is up — tests use it with
// -addr 127.0.0.1:0.
func run(ctx context.Context, args []string, logw io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("knnserver", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	bits := fs.Int("bits", 1024, "accepted fingerprint length")
	buildTimeout := fs.Duration("build-timeout", 0,
		"abort graph builds running longer than this (0 disables the deadline)")
	dataDir := fs.String("data-dir", "",
		"directory for the WAL and snapshots (empty: in-memory only, state dies with the process)")
	fsyncMode := fs.String("fsync", "always",
		"WAL fsync policy: always (acked uploads survive power loss) or none (page cache decides)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"maximum duration for reading an entire request, body included (0 disables; slow-loris guard)")
	writeTimeout := fs.Duration("write-timeout", time.Minute,
		"maximum duration for writing a response (0 disables; graph builds extend their own deadline)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute,
		"how long an idle keep-alive connection is kept open (0 disables)")
	maxHeaderBytes := fs.Int("max-header-bytes", 64<<10,
		"maximum request header size in bytes (0 uses the net/http default)")
	maxInflightQueries := fs.Int("max-inflight-queries", 0,
		"concurrent /query executions before queueing (0 uses the default, 2×GOMAXPROCS)")
	queryTimeout := fs.Duration("query-timeout", 10*time.Second,
		"per-request deadline for /query, admission queue included (0 disables; clients can lower it with X-Request-Timeout)")
	rateLimit := fs.Float64("rate-limit", 0,
		"global request rate limit in requests/second, enforced with a token bucket (0 disables)")
	clusterViews := fs.Int("cluster-views", 0,
		"independent clustering views for algo=cluster builds (0 uses the default)")
	clusterMaxSize := fs.Int("cluster-max-size", 0,
		"maximum cluster size for algo=cluster builds; oversized buckets are split recursively (0 uses the default)")
	shards := fs.Int("shards", 1,
		"run this many in-process shard-cores behind a scatter-gather router on -addr (1: classic single node)")
	role := fs.String("role", "",
		"multi-process deployment role: \"shard\" (one shard-core process; pair with -name and -join) or \"router\" (routing tier; pair with -peers). Empty: single node or -shards in-process mode")
	shardName := fs.String("name", "",
		"role=shard: this shard's stable name on the placement ring (e.g. shard-0); must survive restarts so the ring does not move")
	joinURL := fs.String("join", "",
		"role=shard: router base URL to register with (e.g. http://127.0.0.1:8080); empty skips self-registration (join manually via the router's /cluster/join)")
	advertiseURL := fs.String("advertise", "",
		"role=shard: URL the router should use to reach this process (default: http://<bound addr>, with 0.0.0.0/:: rewritten to 127.0.0.1 — loopback-only unless you advertise a reachable address)")
	peers := fs.String("peers", "",
		"role=router: comma-separated seed shard URLs, each \"name=url\" or a bare url (name is then resolved from the shard's /stats); shards may also self-register via -join")
	migrateTimeout := fs.Duration("migrate-timeout", 0,
		"role=router: give up on a single shard-to-shard migration transfer after this long (0 uses the default, 2m)")
	migrateRate := fs.Int("migrate-rate", 0,
		"role=shard: cap migration-import apply throughput at this many users/second so a live gainer stays responsive while a transfer streams in (0: unlimited)")
	quorum := fs.Float64("quorum", 0.5,
		"sharded mode: minimum fraction of shards that must answer a /query for a 200; below it the router answers 503 with Retry-After")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"sharded mode: wait this long before hedging a duplicate request at a straggler shard (0: adaptive, 2× the shard's windowed p99; negative disables hedging)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *buildTimeout < 0 {
		return fmt.Errorf("-build-timeout must be non-negative, got %s", *buildTimeout)
	}
	for _, f := range []struct {
		name string
		val  time.Duration
	}{
		{"-read-timeout", *readTimeout},
		{"-write-timeout", *writeTimeout},
		{"-idle-timeout", *idleTimeout},
		{"-query-timeout", *queryTimeout},
	} {
		if f.val < 0 {
			return fmt.Errorf("%s must be non-negative, got %s", f.name, f.val)
		}
	}
	if *maxHeaderBytes < 0 {
		return fmt.Errorf("-max-header-bytes must be non-negative, got %d", *maxHeaderBytes)
	}
	if *maxInflightQueries < 0 {
		return fmt.Errorf("-max-inflight-queries must be non-negative, got %d", *maxInflightQueries)
	}
	if *rateLimit < 0 {
		return fmt.Errorf("-rate-limit must be non-negative, got %g", *rateLimit)
	}
	if *clusterViews < 0 {
		return fmt.Errorf("-cluster-views must be non-negative, got %d", *clusterViews)
	}
	if *clusterMaxSize < 0 {
		return fmt.Errorf("-cluster-max-size must be non-negative, got %d", *clusterMaxSize)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *quorum <= 0 || *quorum > 1 {
		return fmt.Errorf("-quorum must be in (0, 1], got %g", *quorum)
	}
	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	if *migrateTimeout < 0 {
		return fmt.Errorf("-migrate-timeout must be non-negative, got %s", *migrateTimeout)
	}

	logger := log.New(logw, "", log.LstdFlags)
	switch *role {
	case "":
		if *shardName != "" || *joinURL != "" || *advertiseURL != "" || *peers != "" {
			return errors.New("-name, -join, -advertise and -peers require a -role")
		}
	case "shard":
		if *shards != 1 {
			return errors.New("-role shard runs exactly one shard-core; drop -shards")
		}
		if *peers != "" {
			return errors.New("-peers is a router flag; a shard uses -join")
		}
		if *shardName == "" {
			return errors.New("-role shard requires -name (a stable ring name, e.g. shard-0)")
		}
		return runShardProc(ctx, shardProcParams{
			addr:         *addr,
			bits:         *bits,
			name:         *shardName,
			join:         *joinURL,
			advertise:    *advertiseURL,
			buildTimeout: *buildTimeout,
			dataDir:      *dataDir,
			fsync:        fsyncPolicy,
			httpTimeouts: httpTimeouts{*readTimeout, *writeTimeout, *idleTimeout, *maxHeaderBytes},
			admission:    admissionConfig(*maxInflightQueries, *queryTimeout, *rateLimit),
			migrateRate:  *migrateRate,
			clusterViews: *clusterViews, clusterMaxSize: *clusterMaxSize,
		}, logger, ready)
	case "router":
		if *shards != 1 {
			return errors.New("-role router has no local shard-cores; drop -shards")
		}
		if *joinURL != "" || *shardName != "" || *dataDir != "" {
			return errors.New("-name, -join and -data-dir are shard flags; the router holds no data")
		}
		return runRouterProc(ctx, routerProcParams{
			addr:           *addr,
			peers:          *peers,
			quorum:         *quorum,
			hedgeAfter:     *hedgeAfter,
			queryTimeout:   *queryTimeout,
			migrateTimeout: *migrateTimeout,
			httpTimeouts:   httpTimeouts{*readTimeout, *writeTimeout, *idleTimeout, *maxHeaderBytes},
		}, logger, ready)
	default:
		return fmt.Errorf("unknown -role %q (want shard or router)", *role)
	}
	if *shards > 1 {
		return runSharded(ctx, shardedParams{
			addr:           *addr,
			bits:           *bits,
			shards:         *shards,
			quorum:         *quorum,
			hedgeAfter:     *hedgeAfter,
			buildTimeout:   *buildTimeout,
			dataDir:        *dataDir,
			fsync:          fsyncPolicy,
			readTimeout:    *readTimeout,
			writeTimeout:   *writeTimeout,
			idleTimeout:    *idleTimeout,
			maxHeaderBytes: *maxHeaderBytes,
			maxInflight:    *maxInflightQueries,
			queryTimeout:   *queryTimeout,
			rateLimit:      *rateLimit,
			clusterViews:   *clusterViews,
			clusterMaxSize: *clusterMaxSize,
		}, logger, ready)
	}

	srv, err := service.NewServer(*bits)
	if err != nil {
		return err
	}
	srv.SetBuildTimeout(*buildTimeout)
	srv.SetClusterConfig(*clusterViews, *clusterMaxSize)

	srv.SetAdmission(admissionConfig(*maxInflightQueries, *queryTimeout, *rateLimit))

	var store *durable.Store
	if *dataDir != "" {
		st, rec, err := durable.Open(durable.Options{
			Dir:     *dataDir,
			Fsync:   fsyncPolicy,
			Metrics: srv.Metrics(),
			Logf:    logger.Printf,
		})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
		if err := srv.UseStore(st, rec); err != nil {
			st.Close()
			return err
		}
		store = st
		epoch := int64(0)
		if rec.Epoch != nil {
			epoch = rec.Epoch.Seq
		}
		logger.Printf("recovered %d users from %s (epoch %d, %d WAL records replayed, %d bytes dropped, %d files quarantined)",
			len(rec.State.Users), *dataDir, epoch, rec.RecordsReplayed, rec.BytesDropped, len(rec.Quarantined))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("knnserver listening on %s (fingerprints: %d bits, build timeout: %s)",
		ln.Addr(), *bits, *buildTimeout)
	if ready != nil {
		ready(ln.Addr().String())
	}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		if store != nil {
			store.Close()
		}
		return err
	}
	// Graceful shutdown: seal the active WAL segment so the next start
	// replays a cleanly-synced tail. Crash-stops skip this path by design —
	// that is what recovery is for.
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("closing durable store: %v", err)
		}
	}
	return nil
}

// admissionConfig derives the admission configuration the flags select.
func admissionConfig(maxInflightQueries int, queryTimeout time.Duration, rateLimit float64) admit.Config {
	cfg := admit.DefaultConfig()
	if maxInflightQueries > 0 {
		cfg.Query.MaxInflight = maxInflightQueries
		cfg.Query.MaxQueue = 4 * maxInflightQueries
	}
	cfg.Query.Timeout = queryTimeout
	if rateLimit > 0 {
		cfg.Rate = rateLimit
		// One second of burst headroom so well-behaved clients with bursty
		// arrivals are not clipped at the average rate.
		cfg.Burst = rateLimit
	}
	return cfg
}

// shardedParams carries the parsed flags into sharded mode.
type shardedParams struct {
	addr           string
	bits           int
	shards         int
	quorum         float64
	hedgeAfter     time.Duration
	buildTimeout   time.Duration
	dataDir        string
	fsync          durable.FsyncPolicy
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration
	maxHeaderBytes int
	maxInflight    int
	queryTimeout   time.Duration
	rateLimit      float64
	clusterViews   int
	clusterMaxSize int
}

// runSharded boots -shards in-process shard-cores, each a full knnserver
// service owning a consistent-hash slice of the user ids, listening on its
// own loopback port with real HTTP between the tiers — the router speaks
// to them exactly as it would to remote shards. The scatter-gather router
// serves -addr with the same endpoint surface as a single node.
func runSharded(ctx context.Context, p shardedParams, logger *log.Logger, ready func(addr string)) error {
	names := make([]string, p.shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	// Shard-cores and router derive ownership from the same deterministic
	// placement ring, so a shard can answer 421 (naming the owner in
	// X-Owner-Shard) for ids the router would never send it — misrouting
	// is loud, not silent.
	ring := service.RingInfo{Epoch: 1, Mode: service.RingStable, Names: names}

	var (
		specs     []router.ShardSpec
		shardSrvs []*http.Server
		stores    []*durable.Store
		closers   []func()
	)
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	for i := 0; i < p.shards; i++ {
		srv, err := service.NewServer(p.bits)
		if err != nil {
			cleanup()
			return err
		}
		srv.SetBuildTimeout(p.buildTimeout)
		srv.SetClusterConfig(p.clusterViews, p.clusterMaxSize)
		srv.SetAdmission(admissionConfig(p.maxInflight, p.queryTimeout, p.rateLimit))
		srv.SetShardName(names[i])
		if err := srv.InstallRing(ring); err != nil {
			cleanup()
			return err
		}
		if p.dataDir != "" {
			dir := filepath.Join(p.dataDir, names[i])
			if err := os.MkdirAll(dir, 0o755); err != nil {
				cleanup()
				return fmt.Errorf("creating shard data dir %s: %w", dir, err)
			}
			st, rec, err := durable.Open(durable.Options{
				Dir:     dir,
				Fsync:   p.fsync,
				Metrics: srv.Metrics(),
				Logf:    logger.Printf,
			})
			if err != nil {
				cleanup()
				return fmt.Errorf("opening shard data dir %s: %w", dir, err)
			}
			if err := srv.UseStore(st, rec); err != nil {
				st.Close()
				cleanup()
				return err
			}
			stores = append(stores, st)
			closers = append(closers, func() { st.Close() })
			logger.Printf("%s: recovered %d users from %s (%d WAL records replayed)",
				names[i], len(rec.State.Users), dir, rec.RecordsReplayed)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return fmt.Errorf("listening for %s: %w", names[i], err)
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       p.readTimeout,
			WriteTimeout:      p.writeTimeout,
			IdleTimeout:       p.idleTimeout,
			MaxHeaderBytes:    p.maxHeaderBytes,
		}
		shardSrvs = append(shardSrvs, hs)
		closers = append(closers, func() { hs.Close() })
		name := names[i]
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("%s: serve: %v", name, err)
			}
		}()
		specs = append(specs, router.ShardSpec{Name: names[i], URL: "http://" + ln.Addr().String()})
		logger.Printf("%s listening on %s", names[i], ln.Addr())
	}

	rt, err := router.New(router.Config{
		Shards:       specs,
		Quorum:       p.quorum,
		QueryTimeout: p.queryTimeout,
		HedgeAfter:   p.hedgeAfter,
		Metrics:      obs.NewRegistry(),
		Logf:         logger.Printf,
	})
	if err != nil {
		cleanup()
		return err
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		rt.Close()
		cleanup()
		return err
	}
	front := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       p.readTimeout,
		WriteTimeout:      p.writeTimeout,
		IdleTimeout:       p.idleTimeout,
		MaxHeaderBytes:    p.maxHeaderBytes,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := front.Shutdown(shutdownCtx); err != nil {
			logger.Printf("router shutdown: %v", err)
		}
	}()

	logger.Printf("knnserver router listening on %s (%d shards, quorum %g, fingerprints: %d bits)",
		ln.Addr(), p.shards, p.quorum, p.bits)
	if ready != nil {
		ready(ln.Addr().String())
	}
	serveErr := front.Serve(ln)
	rt.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, hs := range shardSrvs {
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("%s shutdown: %v", names[i], err)
		}
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			logger.Printf("closing shard store: %v", err)
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

// httpTimeouts bundles the http.Server hardening flags.
type httpTimeouts struct {
	read, write, idle time.Duration
	maxHeaderBytes    int
}

func (t httpTimeouts) server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       t.read,
		WriteTimeout:      t.write,
		IdleTimeout:       t.idle,
		MaxHeaderBytes:    t.maxHeaderBytes,
	}
}

// shardProcParams carries the parsed flags into -role shard mode.
type shardProcParams struct {
	addr           string
	bits           int
	name           string
	join           string
	advertise      string
	buildTimeout   time.Duration
	dataDir        string
	fsync          durable.FsyncPolicy
	httpTimeouts   httpTimeouts
	admission      admit.Config
	migrateRate    int
	clusterViews   int
	clusterMaxSize int
}

// ringFile is where a shard process persists its installed placement ring
// inside -data-dir, so a restart recovers ownership (and keeps answering
// 421 with the right owner) before the router re-pushes.
const ringFile = "ring.json"

// runShardProc boots one shard-core as its own OS process: a full
// knnserver service with its own WAL under -data-dir, named on the
// placement ring, registering itself with the router at -join and
// re-asserting membership periodically so a restarted router relearns the
// cluster without operator action. Migration state (import journal marks)
// rides the shard's own WAL, so a SIGKILL mid-migration recovers.
func runShardProc(ctx context.Context, p shardProcParams, logger *log.Logger, ready func(addr string)) error {
	srv, err := service.NewServer(p.bits)
	if err != nil {
		return err
	}
	srv.SetShardName(p.name)
	srv.SetBuildTimeout(p.buildTimeout)
	srv.SetClusterConfig(p.clusterViews, p.clusterMaxSize)
	srv.SetAdmission(p.admission)
	srv.SetMigrateRate(p.migrateRate)

	var store *durable.Store
	if p.dataDir != "" {
		if err := os.MkdirAll(p.dataDir, 0o755); err != nil {
			return fmt.Errorf("creating data dir %s: %w", p.dataDir, err)
		}
		ringPath := filepath.Join(p.dataDir, ringFile)
		srv.SetRingHook(func(info service.RingInfo) {
			raw, err := json.Marshal(info)
			if err != nil {
				return
			}
			tmp := ringPath + ".tmp"
			if err := os.WriteFile(tmp, raw, 0o644); err != nil {
				logger.Printf("persisting ring: %v", err)
				return
			}
			if err := os.Rename(tmp, ringPath); err != nil {
				logger.Printf("persisting ring: %v", err)
			}
		})
		st, rec, err := durable.Open(durable.Options{
			Dir:     p.dataDir,
			Fsync:   p.fsync,
			Metrics: srv.Metrics(),
			Logf:    logger.Printf,
		})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", p.dataDir, err)
		}
		if err := srv.UseStore(st, rec); err != nil {
			st.Close()
			return err
		}
		store = st
		logger.Printf("%s: recovered %d users from %s (%d WAL records replayed)",
			p.name, len(rec.State.Users), p.dataDir, rec.RecordsReplayed)
		if raw, err := os.ReadFile(ringPath); err == nil {
			var info service.RingInfo
			if err := json.Unmarshal(raw, &info); err == nil {
				if err := srv.InstallRing(info); err != nil {
					logger.Printf("%s: persisted ring rejected: %v", p.name, err)
				} else {
					logger.Printf("%s: recovered ring epoch %d (%s, %d shards)",
						p.name, info.Epoch, info.Mode, len(info.Names))
				}
			}
		}
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	advertise := p.advertise
	if advertise == "" {
		advertise = "http://" + loopbackAddr(ln.Addr().String())
	}
	httpSrv := p.httpTimeouts.server(srv.Handler())
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	// Register with the router: retry until the first ack (the router may
	// start after us), then re-assert every 30s so a restarted router —
	// whose membership table is in-memory — relearns us without operator
	// action. A SIGKILL here is safe: the router's prober marks us dead but
	// keeps us on the ring, so a restart resumes the same slice.
	if p.join != "" {
		go func() {
			body, _ := json.Marshal(map[string]string{"name": p.name, "url": advertise})
			joined := false
			for {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					p.join+"/cluster/join", bytes.NewReader(body))
				if err == nil {
					req.Header.Set("Content-Type", "application/json")
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusOK && !joined {
							joined = true
							logger.Printf("%s: joined cluster at %s (advertising %s)", p.name, p.join, advertise)
						}
					} else if !joined {
						logger.Printf("%s: join %s: %v (retrying)", p.name, p.join, err)
					}
				}
				wait := 30 * time.Second
				if !joined {
					wait = time.Second
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
		}()
	}

	logger.Printf("knnserver shard %s listening on %s (fingerprints: %d bits, advertising %s)",
		p.name, ln.Addr(), p.bits, advertise)
	if ready != nil {
		ready(ln.Addr().String())
	}
	serveErr := httpSrv.Serve(ln)
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("closing durable store: %v", err)
		}
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

// loopbackAddr rewrites a wildcard bind address (0.0.0.0, ::, or empty
// host) to the loopback address peers on the same machine can dial. The
// default deployment is single-machine loopback; crossing machines
// requires an explicit -advertise (see README: the cluster protocol
// carries no TLS or auth of its own).
func loopbackAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		return net.JoinHostPort("127.0.0.1", port)
	}
	return bound
}

// routerProcParams carries the parsed flags into -role router mode.
type routerProcParams struct {
	addr           string
	peers          string
	quorum         float64
	hedgeAfter     time.Duration
	queryTimeout   time.Duration
	migrateTimeout time.Duration
	httpTimeouts   httpTimeouts
}

// runRouterProc boots the routing tier as its own process: no local
// shard-cores, membership fed by -peers seeds and by shards registering
// through POST /cluster/join. Named peers (name=url) are seeded
// synchronously; bare URLs are resolved in the background by asking each
// shard's /stats for its name, retrying until the shard appears.
func runRouterProc(ctx context.Context, p routerProcParams, logger *log.Logger, ready func(addr string)) error {
	var seeds []router.ShardSpec
	var unnamed []string
	for _, entry := range strings.Split(p.peers, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if name, url, ok := strings.Cut(entry, "="); ok && !strings.Contains(name, "/") {
			seeds = append(seeds, router.ShardSpec{Name: name, URL: url})
		} else {
			unnamed = append(unnamed, entry)
		}
	}
	rt, err := router.New(router.Config{
		Shards:         seeds,
		Quorum:         p.quorum,
		QueryTimeout:   p.queryTimeout,
		HedgeAfter:     p.hedgeAfter,
		MigrateTimeout: p.migrateTimeout,
		Metrics:        obs.NewRegistry(),
		Logf:           logger.Printf,
	})
	if err != nil {
		return err
	}
	for _, url := range unnamed {
		go func(url string) {
			for {
				if name, err := resolveShardName(ctx, url); err == nil {
					rt.Join(ctx, name, url)
					return
				} else if ctx.Err() != nil {
					return
				} else {
					logger.Printf("router: resolving peer %s: %v (retrying)", url, err)
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}(url)
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		rt.Close()
		return err
	}
	front := p.httpTimeouts.server(rt.Handler())
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := front.Shutdown(shutdownCtx); err != nil {
			logger.Printf("router shutdown: %v", err)
		}
	}()

	logger.Printf("knnserver router listening on %s (%d named seeds, %d unnamed peers, quorum %g)",
		ln.Addr(), len(seeds), len(unnamed), p.quorum)
	if ready != nil {
		ready(ln.Addr().String())
	}
	serveErr := front.Serve(ln)
	rt.Close()
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

// resolveShardName asks a shard process who it is via GET /stats.
func resolveShardName(ctx context.Context, baseURL string) (string, error) {
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, baseURL+"/stats", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st struct {
		Shard string `json:"shard"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return "", fmt.Errorf("decoding /stats: %w", err)
	}
	if st.Shard == "" {
		return "", fmt.Errorf("peer %s reports no shard name (is it running -role shard with -name?)", baseURL)
	}
	return st.Shard, nil
}
