// Command knnserver runs the untrusted KNN-construction service of the
// paper's §2.5 deployment: clients fingerprint their profiles locally and
// upload only the SHFs; this server builds and serves the KNN graph without
// ever seeing a profile in clear text.
//
// Endpoints:
//
//	PUT  /users/{id}/fingerprint   upload a binary SHF (internal/core codec)
//	POST /graph/build?k=30&algo=hyrec
//	GET  /users/{id}/neighbors
//	POST /query?k=10               top-k users for an uploaded fingerprint
//	GET  /stats, GET /healthz
//
// Usage:
//
//	knnserver -addr :8080 -bits 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"goldfinger/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bits := flag.Int("bits", 1024, "accepted fingerprint length")
	flag.Parse()

	srv, err := service.NewServer(*bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnserver:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("knnserver listening on %s (fingerprints: %d bits)", *addr, *bits)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
