// Command knnserver runs the untrusted KNN-construction service of the
// paper's §2.5 deployment: clients fingerprint their profiles locally and
// upload only the SHFs; this server builds and serves the KNN graph without
// ever seeing a profile in clear text.
//
// Endpoints:
//
//	PUT  /users/{id}/fingerprint   upload a binary SHF (internal/core codec)
//	POST /graph/build?k=30&algo=hyrec
//	GET  /users/{id}/neighbors
//	POST /query?k=10               top-k users for an uploaded fingerprint
//	GET  /stats, GET /healthz
//
// # Graph epochs
//
// Each successful POST /graph/build produces a new immutable graph epoch —
// the KNN graph pinned to the exact user set and fingerprints it was built
// from. Construction runs outside any lock, so uploads, neighborhood reads
// and queries all proceed at full speed while a build is running. The
// contract:
//
//   - A stale epoch keeps serving the user set it was built from: users who
//     re-upload a fingerprint see their *old* neighborhood until the next
//     build (GET /stats reports graph_stale: true).
//   - GET /users/{id}/neighbors for a user registered after the current
//     epoch was built returns 409 Conflict ("registered after epoch N";
//     rebuild to include them) — never an error page or a crash.
//   - At most one build runs at a time: a concurrent POST /graph/build gets
//     409 Conflict with a Retry-After header instead of queuing.
//   - GET /stats exposes the epoch sequence number, the user count, the
//     algorithm, the build duration and comparison count of the current
//     epoch, and build_running while a construction is in flight.
//
// Fingerprint bodies (uploads and queries) are bounded to the exact wire
// size of one fingerprint at the configured -bits; oversized bodies get
// 413 and trailing bytes after a valid SHF get 400.
//
// Usage:
//
//	knnserver -addr :8080 -bits 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"goldfinger/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bits := flag.Int("bits", 1024, "accepted fingerprint length")
	flag.Parse()

	srv, err := service.NewServer(*bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnserver:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("knnserver listening on %s (fingerprints: %d bits)", *addr, *bits)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
