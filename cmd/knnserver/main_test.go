package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"goldfinger/internal/core"
	"goldfinger/internal/profile"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-bits", "0"},
		{"-bits", "-5"},
		{"-build-timeout", "banana"},
		{"-build-timeout", "-1s"},
		{"-read-timeout", "-1s"},
		{"-write-timeout", "-1ms"},
		{"-idle-timeout", "-2m"},
		{"-max-header-bytes", "-1"},
		{"-max-inflight-queries", "-4"},
		{"-query-timeout", "-5s"},
		{"-rate-limit", "-100"},
		{"-cluster-views", "-1"},
		{"-cluster-max-size", "-64"},
		{"-shards", "0"},
		{"-shards", "-2"},
		{"-quorum", "0"},
		{"-quorum", "1.5"},
		{"-quorum", "-0.5"},
		{"-nosuchflag"},
		{"stray-positional"},
		{"-role", "bogus"},
		{"-role", "shard"},                               // missing -name
		{"-role", "shard", "-shards", "2"},               // roles run one core
		{"-role", "shard", "-name", "s0", "-peers", "x"}, // -peers is a router flag
		{"-role", "router", "-data-dir", "/tmp/x"},       // router holds no data
		{"-role", "router", "-join", "http://x"},         // -join is a shard flag
		{"-name", "s0"},                                  // role flags without -role
		{"-migrate-timeout", "-1s"},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		err := run(ctx, args, io.Discard, nil)
		cancel()
		if err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsUnlistenableAddr(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Error("bogus listen address accepted")
	}
}

// TestRunServesAndShutsDown is the startup/shutdown smoke test: the server
// must come up on an ephemeral port with the -build-timeout flag applied,
// answer the health, stats and metrics endpoints, and exit cleanly when the
// context is canceled.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-bits", "256", "-build-timeout", "30s"}, &logs, func(addr string) {
			addrCh <- addr
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path != "/healthz" {
			var v map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Errorf("GET %s: invalid JSON: %v", path, err)
			}
		}
		resp.Body.Close()
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if !bytes.Contains(logs.Bytes(), []byte("build timeout: 30s")) {
		t.Errorf("startup log did not record the build timeout: %q", logs.String())
	}
}

// TestRunHardenedServerServes boots with every hardening and admission
// flag set to a tight-but-workable value and checks the server still
// answers; it also checks the admission snapshot shows the configured
// query limit and that a client-set X-Request-Timeout is honored.
func TestRunHardenedServerServes(t *testing.T) {
	var logs bytes.Buffer
	addr, shutdown := startServer(t, &logs,
		"-read-timeout", "10s", "-write-timeout", "10s", "-idle-timeout", "30s",
		"-max-header-bytes", "8192",
		"-max-inflight-queries", "2", "-query-timeout", "3s", "-rate-limit", "1000")
	defer shutdown()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Admission map[string]struct {
			MaxInflight int `json:"max_inflight"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := st.Admission["query"].MaxInflight; got != 2 {
		t.Errorf("query max_inflight = %d, want 2 from -max-inflight-queries", got)
	}

	// An oversized header must be refused by MaxHeaderBytes, not served.
	req, _ := http.NewRequest(http.MethodGet, "http://"+addr+"/healthz", nil)
	req.Header.Set("X-Padding", strings.Repeat("a", 16<<10))
	if resp, err := client.Do(req); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("16KiB header accepted despite -max-header-bytes 8192")
		}
		resp.Body.Close()
	}

	// A bad client timeout is a 400, and a generous one passes through.
	req, _ = http.NewRequest(http.MethodGet, "http://"+addr+"/stats", nil)
	req.Header.Set("X-Request-Timeout", "never")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad X-Request-Timeout: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRunClusterFlagsServeBuild boots with the cluster tuning flags set and
// checks an algo=cluster build succeeds end to end at the binary boundary.
func TestRunClusterFlagsServeBuild(t *testing.T) {
	var logs bytes.Buffer
	addr, shutdown := startServer(t, &logs, "-cluster-views", "2", "-cluster-max-size", "32")
	defer shutdown()

	scheme := core.MustScheme(256, 7)
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		p := profile.New(profile.ItemID(i*3+1), profile.ItemID(i*3+2), profile.ItemID(i*3+3), 1000)
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodPut,
			fmt.Sprintf("http://%s/users/u%d/fingerprint", addr, i), &buf)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := client.Post("http://"+addr+"/graph/build?k=3&algo=cluster", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster build status %d", resp.StatusCode)
	}
	var br struct {
		Algorithm string `json:"algorithm"`
		Users     int    `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Algorithm != "cluster" || br.Users != 20 {
		t.Fatalf("build result %+v", br)
	}
}

func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-data-dir", dir, "-fsync", "sometimes"}, io.Discard, nil); err == nil {
		t.Error("bogus -fsync policy accepted")
	}
}

// startServer boots run() with the given extra flags and returns the bound
// address plus a shutdown func that waits for a clean exit.
func startServer(t *testing.T, logs io.Writer, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-bits", "256"}, extra...)
	go func() { errCh <- run(ctx, args, logs, func(addr string) { addrCh <- addr }) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server did not become ready")
	}
	return addr, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("run returned %v on shutdown", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

// TestRunRestartRecoversState is the end-to-end durability test at the
// binary boundary: upload fingerprints and build against a -data-dir
// server, shut it down, start a second server on the same dir, and the
// users, the graph epoch and the neighbor lists must all be back.
func TestRunRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	scheme := core.MustScheme(256, 7)
	const n = 8

	var logs1 bytes.Buffer
	addr, shutdown := startServer(t, &logs1, "-data-dir", dir, "-fsync", "always")
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		p := profile.New(profile.ItemID(i*3+1), profile.ItemID(i*3+2), profile.ItemID(i*3+3), 1000)
		if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodPut,
			fmt.Sprintf("http://%s/users/u%d/fingerprint", addr, i), &buf)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := client.Post("http://"+addr+"/graph/build?k=3&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build status %d", resp.StatusCode)
	}
	resp.Body.Close()
	shutdown()

	var logs2 bytes.Buffer
	addr2, shutdown2 := startServer(t, &logs2, "-data-dir", dir)
	defer shutdown2()
	if !bytes.Contains(logs2.Bytes(), []byte(fmt.Sprintf("recovered %d users", n))) {
		t.Errorf("restart log did not report recovery: %q", logs2.String())
	}
	sresp, err := client.Get("http://" + addr2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if users, _ := st["users"].(float64); int(users) != n {
		t.Fatalf("restarted /stats users = %v, want %d", st["users"], n)
	}
	if built, _ := st["graph_built"].(bool); !built {
		t.Fatalf("restarted /stats graph_built = %v, want true", st["graph_built"])
	}
	if stale, ok := st["graph_stale"].(bool); ok && stale {
		t.Fatal("restarted /stats reports graph_stale: recovered epoch must match recovered state")
	}
	for i := 0; i < n; i++ {
		nresp, err := client.Get(fmt.Sprintf("http://%s/users/u%d/neighbors", addr2, i))
		if err != nil {
			t.Fatal(err)
		}
		if nresp.StatusCode != http.StatusOK {
			t.Fatalf("neighbors of u%d after restart: status %d", i, nresp.StatusCode)
		}
		var nbrs []map[string]any
		if err := json.NewDecoder(nresp.Body).Decode(&nbrs); err != nil {
			t.Fatal(err)
		}
		nresp.Body.Close()
		if len(nbrs) != 3 {
			t.Fatalf("neighbors of u%d after restart: %d entries, want 3", i, len(nbrs))
		}
	}
}

// uploadUser PUTs one deterministic fingerprint for the given user id.
func uploadUser(t *testing.T, client *http.Client, addr string, scheme *core.Scheme, id string, salt int) {
	t.Helper()
	var buf bytes.Buffer
	p := profile.New(profile.ItemID(salt*3+1), profile.ItemID(salt*5+2), profile.ItemID(salt*7+3), profile.ItemID(salt+1000))
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(p)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut,
		fmt.Sprintf("http://%s/users/%s/fingerprint", addr, id), &buf)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload %s: status %d", id, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRunShardedServes is the -shards smoke test at the binary boundary:
// three in-process shard-cores behind the router, real HTTP between the
// tiers. Uploads route to owners, the build fans out, /query scatter-
// gathers with full coverage, /stats aggregates the shards section, and a
// request sent directly to a shard for a user it does not own is answered
// 421 Misdirected Request.
func TestRunShardedServes(t *testing.T) {
	var logs bytes.Buffer
	addr, shutdown := startServer(t, &logs, "-shards", "3")
	defer shutdown()
	scheme := core.MustScheme(256, 7)
	client := &http.Client{Timeout: 10 * time.Second}

	const n = 30
	for i := 0; i < n; i++ {
		uploadUser(t, client, addr, scheme, fmt.Sprintf("u%d", i), i)
	}

	resp, err := client.Post("http://"+addr+"/graph/build?k=3&algo=bruteforce", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("fan-out build status %d: %s", resp.StatusCode, body)
	}
	var build struct {
		Built int `json:"built"`
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&build); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if build.Built != 3 || build.Total != 3 {
		t.Fatalf("build aggregate %+v, want 3/3", build)
	}

	// Scatter-gather query: full coverage, merged top-k.
	var qbuf bytes.Buffer
	if err := core.WriteFingerprint(&qbuf, scheme.Fingerprint(profile.New(4, 12, 24, 1003))); err != nil {
		t.Fatal(err)
	}
	qresp, err := client.Post("http://"+addr+"/query?k=5", "application/octet-stream", &qbuf)
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(qresp.Body)
		t.Fatalf("query status %d: %s", qresp.StatusCode, body)
	}
	if got := qresp.Header.Get("X-Partial-Results"); got != "3/3" {
		t.Errorf("X-Partial-Results = %q, want 3/3", got)
	}
	var hits []struct {
		User       string  `json:"user"`
		Similarity float64 `json:"similarity"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if len(hits) != 5 {
		t.Fatalf("query returned %d hits, want 5", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Similarity < hits[i].Similarity {
			t.Fatalf("hits out of order at %d: %v", i, hits)
		}
	}

	// Neighbors read routes to the owner and answers like a single node.
	nresp, err := client.Get("http://" + addr + "/users/u0/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	if nresp.StatusCode != http.StatusOK {
		t.Fatalf("neighbors via router: status %d", nresp.StatusCode)
	}
	nresp.Body.Close()

	// /stats: router view with the shards section; user counts sum to n.
	sresp, err := client.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Router bool `json:"router"`
		Shards []struct {
			Name  string `json:"name"`
			URL   string `json:"url"`
			State string `json:"state"`
			Users int    `json:"users"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !st.Router || len(st.Shards) != 3 {
		t.Fatalf("router stats %+v, want router=true with 3 shards", st)
	}
	total := 0
	for _, sh := range st.Shards {
		if sh.State != "healthy" {
			t.Errorf("shard %s state %q, want healthy", sh.Name, sh.State)
		}
		total += sh.Users
	}
	if total != n {
		t.Errorf("shard user counts sum to %d, want %d", total, n)
	}

	// Misdirected request: find a user and a shard that does not own it and
	// hit the shard-core directly — it must refuse with 421, not accept a
	// write the router would never find again.
	misdirected := false
	for i := 0; i < n && !misdirected; i++ {
		id := fmt.Sprintf("u%d", i)
		for _, sh := range st.Shards {
			var buf bytes.Buffer
			if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2, 3))); err != nil {
				t.Fatal(err)
			}
			req, _ := http.NewRequest(http.MethodPut, sh.URL+"/users/"+id+"/fingerprint", &buf)
			dresp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			if dresp.StatusCode == http.StatusMisdirectedRequest {
				misdirected = true
				break
			}
		}
	}
	if !misdirected {
		t.Error("no shard answered 421 for a misrouted id; ownership is not enforced")
	}

	if resp, err := client.Get("http://" + addr + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestRunShardedRestartRecovers checks per-shard durability: each
// shard-core persists under its own subdirectory of -data-dir and a
// restarted sharded deployment recovers every user.
func TestRunShardedRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	scheme := core.MustScheme(256, 7)
	client := &http.Client{Timeout: 10 * time.Second}
	const n = 12

	var logs1 bytes.Buffer
	addr, shutdown := startServer(t, &logs1, "-shards", "2", "-data-dir", dir, "-fsync", "none")
	for i := 0; i < n; i++ {
		uploadUser(t, client, addr, scheme, fmt.Sprintf("u%d", i), i)
	}
	shutdown()

	var logs2 bytes.Buffer
	addr2, shutdown2 := startServer(t, &logs2, "-shards", "2", "-data-dir", dir, "-fsync", "none")
	defer shutdown2()
	sresp, err := client.Get("http://" + addr2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Shards []struct {
			Users int `json:"users"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	total := 0
	for _, sh := range st.Shards {
		total += sh.Users
	}
	if total != n {
		t.Fatalf("recovered %d users across shards, want %d (logs: %s)", total, n, logs2.String())
	}
}

// startProc boots run() with the given args in a goroutine and returns the
// bound address. The process shuts down when ctx is canceled.
func startProc(t *testing.T, ctx context.Context, args ...string) string {
	t.Helper()
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, args, io.Discard, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return addr
	case err := <-errCh:
		t.Fatalf("run %v exited before ready: %v", args, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("run %v did not become ready", args)
	}
	return ""
}

// TestRoleShardAndRouter boots one -role router and two -role shard
// instances (in-process, but wired only over loopback HTTP exactly as
// separate OS processes would be), lets the shards self-register, and
// drives a mutation + read through the router.
func TestRoleShardAndRouter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	routerAddr := startProc(t, ctx, "-role", "router", "-addr", "127.0.0.1:0")
	routerURL := "http://" + routerAddr
	for _, name := range []string{"shard-0", "shard-1"} {
		startProc(t, ctx, "-role", "shard", "-name", name,
			"-addr", "127.0.0.1:0", "-bits", "256", "-join", routerURL)
	}

	// Both shards must appear in membership and the ring must settle.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(routerURL + "/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var cv struct {
			RingMode  string   `json:"ring_mode"`
			RingNames []string `json:"ring_names"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(cv.RingNames) == 2 && cv.RingMode == "stable" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not settle: ring %v mode %s", cv.RingNames, cv.RingMode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	scheme := core.MustScheme(256, 7)
	var buf bytes.Buffer
	if err := core.WriteFingerprint(&buf, scheme.Fingerprint(profile.New(1, 2, 3))); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, routerURL+"/users/alice/fingerprint", strings.NewReader(buf.String()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT via router: status %d", resp.StatusCode)
	}
	resp, err = http.Get(routerURL + "/users/alice/neighbors")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		t.Fatal("user vanished behind the router")
	}
}
