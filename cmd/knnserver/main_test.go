package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-bits", "0"},
		{"-bits", "-5"},
		{"-build-timeout", "banana"},
		{"-build-timeout", "-1s"},
		{"-nosuchflag"},
		{"stray-positional"},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		err := run(ctx, args, io.Discard, nil)
		cancel()
		if err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsUnlistenableAddr(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Error("bogus listen address accepted")
	}
}

// TestRunServesAndShutsDown is the startup/shutdown smoke test: the server
// must come up on an ephemeral port with the -build-timeout flag applied,
// answer the health, stats and metrics endpoints, and exit cleanly when the
// context is canceled.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-bits", "256", "-build-timeout", "30s"}, &logs, func(addr string) {
			addrCh <- addr
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path != "/healthz" {
			var v map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Errorf("GET %s: invalid JSON: %v", path, err)
			}
		}
		resp.Body.Close()
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if !bytes.Contains(logs.Bytes(), []byte("build timeout: 30s")) {
		t.Errorf("startup log did not record the build timeout: %q", logs.String())
	}
}
