package main

import (
	"os"
	"strings"
	"testing"

	"goldfinger/internal/eval"
)

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	err := run([]string{"-datasets", "bogus", "table2"})
	if err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestExperimentIDsAllHandled(t *testing.T) {
	// Every advertised id must dispatch without the "unknown experiment"
	// error; use a microscopic configuration so this stays fast.
	cfg := eval.Config{Scale: 0.008, K: 3, Seed: 1}
	cfg.Datasets = nil // default six, but the scale keeps them tiny
	for _, id := range experimentIDs() {
		switch id {
		case "table4", "fig8", "fig10", "fig11", "fig12", "table5", "table3", "table2", "privacy", "fig9":
			continue // heavier experiments are covered by internal/eval tests
		}
		if err := runExperiment(id, cfg, 500, 1); err != nil {
			t.Errorf("experiment %s failed: %v", id, err)
		}
	}
}

func TestRunSingleLightExperiment(t *testing.T) {
	if err := run([]string{"-trials", "500", "fig4"}); err != nil {
		t.Errorf("fig4 run failed: %v", err)
	}
}

func TestRunStats(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "ratings-*.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1::10::5::1\n1::20::4::1\n2::10::5::1\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-file", f.Name(), "-minratings", "-1", "stats"}); err != nil {
		t.Errorf("stats failed: %v", err)
	}
	if err := run([]string{"stats"}); err == nil {
		t.Error("stats without -file accepted")
	}
	if err := run([]string{"-file", f.Name(), "-format", "bogus", "stats"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-file", "/nonexistent", "stats"}); err == nil {
		t.Error("missing file accepted")
	}
}
