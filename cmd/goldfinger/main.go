// Command goldfinger regenerates the tables and figures of "Fingerprinting
// Big Data: The Case of KNN Graph Construction" (ICDE 2019). Each
// experiment id maps to one table or figure of the paper's evaluation; see
// DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	goldfinger [flags] <experiment> [<experiment>...]
//	goldfinger -scale 0.1 table4
//	goldfinger all
//
// Experiments: fig1 table1 fig3 fig4 fig5 table2 table3 table4 table5 fig8
// fig9 fig10 fig11 fig12 privacy all. The extra experiment "stats" prepares
// a real ratings file (-file, -format, -minratings) with the paper's
// pipeline and prints its Table 2 row and privacy accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/eval"
	"goldfinger/internal/privacy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goldfinger:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("goldfinger", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale (1.0 = the paper's full sizes)")
	bits := fs.Int("bits", 1024, "SHF length in bits")
	k := fs.Int("k", 30, "neighborhood size")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	only := fs.String("datasets", "", "comma-separated preset names (default: all six)")
	trials := fs.Int("trials", 50000, "Monte-Carlo trials for the estimator figures")
	repeats := fs.Int("repeats", 1, "seed-averaged repetitions for table4 (the paper averages 5 runs)")
	file := fs.String("file", "", "real dataset file for the stats experiment")
	format := fs.String("format", "movielens", "format of -file: movielens, csv or edges")
	minRatings := fs.Int("minratings", 20, "minimum raw ratings per user for the stats experiment (-1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given; try: goldfinger table4 (ids: %s)", strings.Join(experimentIDs(), " "))
	}

	cfg := eval.Config{Scale: *scale, Bits: *bits, K: *k, Seed: *seed, Workers: *workers}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			p, err := dataset.PresetByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Datasets = append(cfg.Datasets, p)
		}
	}

	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experimentIDs()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if id == "stats" {
			if err := runStats(*file, *format, *bits, *minRatings); err != nil {
				return err
			}
			continue
		}
		if err := runExperiment(id, cfg, *trials, *repeats); err != nil {
			return err
		}
	}
	return nil
}

// runStats prepares a real dataset file with the paper's pipeline and
// prints its Table 2 row and privacy accounting.
func runStats(file, format string, bits, minRatings int) error {
	if file == "" {
		return fmt.Errorf("stats needs -file (a real ratings file)")
	}
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()

	var ratings []dataset.Rating
	switch format {
	case "movielens":
		ratings, err = dataset.ParseMovieLens(f)
	case "csv":
		ratings, err = dataset.ParseCSV(f)
	case "edges":
		ratings, err = dataset.ParseEdgeList(f)
	default:
		return fmt.Errorf("unknown format %q (movielens, csv or edges)", format)
	}
	if err != nil {
		return err
	}

	d := dataset.FromRatings(file, ratings, dataset.Options{MinRatings: minRatings})
	s := d.ComputeStats()
	fmt.Printf("%s: %d users, %d rated items (universe %d), %d positive ratings\n",
		file, s.Users, s.Items, s.ItemUniverse, s.Ratings)
	fmt.Printf("mean |Pu| = %.2f, mean |Pi| = %.2f, density %.3f%%\n",
		s.MeanProfile, s.MeanItemDeg, s.DensityPct)
	scheme, err := core.NewScheme(bits, 42)
	if err != nil {
		return err
	}
	fmt.Println(privacy.Assess(file, d.Profiles, d.NumItems, scheme))
	return nil
}

func experimentIDs() []string {
	return []string{"fig1", "table1", "fig3", "fig4", "fig5", "table2", "table3",
		"table4", "table5", "fig8", "fig9", "fig10", "fig11", "fig12", "privacy", "ablation",
		"gossip", "dynamic", "scaling"}
}

func runExperiment(id string, cfg eval.Config, trials, repeats int) error {
	w := os.Stdout
	switch id {
	case "fig1":
		eval.RenderFig1(w, eval.Fig1(nil, cfg.Seed))
	case "table1":
		eval.RenderTable1(w, eval.Table1(nil, cfg.Seed))
	case "fig3":
		rows, err := eval.Fig3(trials, cfg.Seed)
		if err != nil {
			return err
		}
		eval.RenderFig3(w, rows)
	case "fig4":
		r, err := eval.Fig4(trials, cfg.Seed)
		if err != nil {
			return err
		}
		eval.RenderFig4(w, r)
	case "fig5":
		rows, err := eval.Fig5(trials, cfg.Seed)
		if err != nil {
			return err
		}
		eval.RenderFig5(w, rows)
	case "table2":
		eval.RenderTable2(w, eval.Table2(cfg))
	case "table3":
		rows, err := eval.Table3(cfg)
		if err != nil {
			return err
		}
		eval.RenderTable3(w, rows)
	case "table4":
		eval.RenderTable4(w, eval.Table4Avg(cfg, repeats))
	case "table5":
		eval.RenderTable5(w, eval.Table5(cfg))
	case "fig8":
		rows, err := eval.Fig8(cfg)
		if err != nil {
			return err
		}
		eval.RenderFig8(w, rows)
	case "fig9":
		eval.RenderFig9(w, eval.Fig9(cfg))
	case "fig10":
		eval.RenderFig10(w, eval.Fig10(cfg, nil))
	case "fig11":
		results, err := eval.Fig11(cfg, 0)
		if err != nil {
			return err
		}
		eval.RenderFig11(w, results)
	case "fig12":
		eval.RenderFig12(w, eval.Fig12(cfg, nil))
	case "privacy":
		eval.RenderPrivacy(w, cfg, eval.PrivacyReport(cfg))
	case "ablation":
		comp, err := eval.AblationCompaction(cfg)
		if err != nil {
			return err
		}
		eval.RenderAblationCompaction(w, comp)
		fmt.Fprintln(w)
		mh, err := eval.AblationMultiHash(cfg)
		if err != nil {
			return err
		}
		eval.RenderAblationMultiHash(w, mh)
		fmt.Fprintln(w)
		eval.RenderAblationKIFF(w, eval.AblationKIFF(cfg))
	case "gossip":
		rows, err := eval.Gossip(cfg, 0)
		if err != nil {
			return err
		}
		eval.RenderGossip(w, rows)
	case "dynamic":
		row, err := eval.Dynamic(cfg, 0)
		if err != nil {
			return err
		}
		eval.RenderDynamic(w, row)
	case "scaling":
		eval.RenderScaling(w, eval.Scaling(cfg, nil))
	default:
		return fmt.Errorf("unknown experiment %q (ids: %s)", id, strings.Join(experimentIDs(), " "))
	}
	return nil
}
