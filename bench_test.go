package goldfinger

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md §5.
// Benchmarks that need a graph-construction run use a small dataset scale
// so `go test -bench=.` completes in minutes; cmd/goldfinger runs the same
// experiments at arbitrary scale.

import (
	"fmt"
	"math/rand"
	"testing"

	"goldfinger/internal/analysis"
	"goldfinger/internal/combin"
	"goldfinger/internal/core"
	"goldfinger/internal/dataset"
	"goldfinger/internal/gossip"
	"goldfinger/internal/knn"
	"goldfinger/internal/memtrack"
	"goldfinger/internal/minhash"
	"goldfinger/internal/profile"
	"goldfinger/internal/recommend"
)

const benchScale = 0.02

func randomProfile(rng *rand.Rand, size, universe int) profile.Profile {
	picked := map[profile.ItemID]bool{}
	for len(picked) < size && len(picked) < universe {
		picked[profile.ItemID(rng.Intn(universe))] = true
	}
	items := make([]profile.ItemID, 0, len(picked))
	for it := range picked {
		items = append(items, it)
	}
	return profile.New(items...)
}

// BenchmarkFig1ExplicitJaccard measures the cost of one exact Jaccard
// computation as a function of profile size (paper Fig 1).
func BenchmarkFig1ExplicitJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{10, 20, 40, 80, 160, 200} {
		p1 := randomProfile(rng, size, 1000)
		p2 := randomProfile(rng, size, 1000)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += profile.Jaccard(p1, p2)
			}
			_ = sink
		})
	}
}

// BenchmarkTable1SHFJaccard measures one SHF Jaccard estimate per
// fingerprint length (paper Table 1; |P| = 80).
func BenchmarkTable1SHFJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p1 := randomProfile(rng, 80, 1000)
	p2 := randomProfile(rng, 80, 1000)
	for _, bits := range []int{64, 256, 1024, 4096} {
		s := core.MustScheme(bits, 3)
		f1, f2 := s.Fingerprint(p1), s.Fingerprint(p2)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += core.Jaccard(f1, f2)
			}
			_ = sink
		})
	}
}

// BenchmarkFig3EstimatorSampling measures the Monte-Carlo sampler behind
// the estimator figures (paper Figs 3–5): one full Ĵ draw per iteration.
func BenchmarkFig3EstimatorSampling(b *testing.B) {
	p := combin.Params{Alpha: 40, Gamma1: 60, Gamma2: 60, B: 1024}
	b.Run("draw", func(b *testing.B) {
		if _, err := analysis.SampleEstimator(p, b.N, 4); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("exact-theorem1-small", func(b *testing.B) {
		small := combin.Params{Alpha: 4, Gamma1: 6, Gamma2: 6, B: 32}
		for i := 0; i < b.N; i++ {
			if _, err := combin.Mean(small); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2DatasetGeneration measures the synthetic pipeline behind
// Table 2: generating one calibrated dataset per iteration.
func BenchmarkTable2DatasetGeneration(b *testing.B) {
	for _, preset := range []dataset.Preset{dataset.ML1M, dataset.AmazonMovies} {
		b.Run(preset.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := dataset.Generate(preset, benchScale, int64(i))
				if d.NumUsers() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkTable3Preparation measures dataset preparation per
// representation (paper Table 3): native profile building, MinHash
// sketching with explicit permutations, and GoldFinger fingerprinting.
func BenchmarkTable3Preparation(b *testing.B) {
	ratings := dataset.GenerateRatings(dataset.ML1M, benchScale, 5)
	d := dataset.FromRatings("ml1M", ratings, dataset.Options{})

	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataset.FromRatings("ml1M", ratings, dataset.Options{})
		}
	})
	b.Run("minhash", func(b *testing.B) {
		cfg := minhash.DefaultConfig()
		for i := 0; i < b.N; i++ {
			sk, err := minhash.NewSketcher(cfg, d.NumItems)
			if err != nil {
				b.Fatal(err)
			}
			sk.SketchAll(d.Profiles)
		}
	})
	b.Run("goldfinger", func(b *testing.B) {
		s := core.MustScheme(1024, 6)
		for i := 0; i < b.N; i++ {
			s.FingerprintAll(d.Profiles)
		}
	})
}

// BenchmarkTable4 measures full KNN graph construction per algorithm and
// mode (paper Table 4 / Figs 6–7), reporting achieved quality as a metric.
func BenchmarkTable4(b *testing.B) {
	for _, preset := range []dataset.Preset{dataset.ML1M, dataset.DBLP} {
		d := dataset.Generate(preset, benchScale, 7)
		exactP := knn.NewExplicitProvider(d.Profiles)
		shfP := knn.NewSHFProvider(core.MustScheme(1024, 7), d.Profiles)
		exact, _ := knn.BruteForce(exactP, 30, knn.Options{})

		type m struct {
			name string
			p    knn.Provider
		}
		for _, algo := range []struct {
			name string
			run  func(p knn.Provider) *knn.Graph
		}{
			{"bruteforce", func(p knn.Provider) *knn.Graph { g, _ := knn.BruteForce(p, 30, knn.Options{Seed: 7}); return g }},
			{"hyrec", func(p knn.Provider) *knn.Graph { g, _ := knn.Hyrec(p, 30, knn.Options{Seed: 7}); return g }},
			{"nndescent", func(p knn.Provider) *knn.Graph { g, _ := knn.NNDescent(p, 30, knn.Options{Seed: 7}); return g }},
			{"lsh", func(p knn.Provider) *knn.Graph {
				g, _ := knn.LSH(d.Profiles, p, 30, knn.LSHOptions{Seed: 7})
				return g
			}},
		} {
			for _, mode := range []m{{"native", exactP}, {"goldfinger", shfP}} {
				b.Run(fmt.Sprintf("%s/%s/%s", preset.Name, algo.name, mode.name), func(b *testing.B) {
					var g *knn.Graph
					for i := 0; i < b.N; i++ {
						g = algo.run(mode.p)
					}
					b.ReportMetric(knn.Quality(g, exact, exactP), "quality")
				})
			}
		}
	}
}

// BenchmarkTable5TrafficModel measures the memory-traffic accounting used
// in place of the paper's hardware counters, reporting the modeled load
// reduction.
func BenchmarkTable5TrafficModel(b *testing.B) {
	d := dataset.Generate(dataset.ML10M, benchScale, 8)
	native := memtrack.ExplicitModel(d.Profiles)
	golfi := memtrack.SHFModel(1024)
	stats := knn.Stats{Comparisons: 1 << 20, Updates: 1 << 12}
	var red float64
	for i := 0; i < b.N; i++ {
		red = memtrack.Reduction(native.ForRun(stats).Loads(), golfi.ForRun(stats).Loads())
	}
	b.ReportMetric(red, "load-reduction-%")
}

// BenchmarkFig8Recommendation measures one full 5-fold cross-validated
// recommendation run (paper Fig 8), reporting the achieved recall.
func BenchmarkFig8Recommendation(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 9)
	scheme := core.MustScheme(1024, 9)
	for _, mode := range []struct {
		name  string
		build func(train *dataset.Dataset) *knn.Graph
	}{
		{"native", func(train *dataset.Dataset) *knn.Graph {
			g, _ := knn.Hyrec(knn.NewExplicitProvider(train.Profiles), 30, knn.Options{Seed: 9})
			return g
		}},
		{"goldfinger", func(train *dataset.Dataset) *knn.Graph {
			g, _ := knn.Hyrec(knn.NewSHFProvider(scheme, train.Profiles), 30, knn.Options{Seed: 9})
			return g
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				var err error
				recall, err = recommend.CrossValidate(d, 5, 9, recommend.DefaultN, mode.build)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkFig9SimilarityVsB measures one SHF similarity per fingerprint
// size on ml10M-shaped profiles (paper Fig 9).
func BenchmarkFig9SimilarityVsB(b *testing.B) {
	d := dataset.Generate(dataset.ML10M, benchScale, 10)
	rng := rand.New(rand.NewSource(10))
	u, v := rng.Intn(d.NumUsers()), rng.Intn(d.NumUsers())
	b.Run("explicit", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += profile.Jaccard(d.Profiles[u], d.Profiles[v])
		}
		_ = sink
	})
	for _, bits := range []int{64, 256, 1024, 4096, 8192} {
		s := core.MustScheme(bits, 10)
		f1, f2 := s.Fingerprint(d.Profiles[u]), s.Fingerprint(d.Profiles[v])
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += core.Jaccard(f1, f2)
			}
			_ = sink
		})
	}
}

// BenchmarkFig10TradeOff measures Hyrec+GoldFinger graph construction per
// fingerprint size (paper Fig 10), reporting quality.
func BenchmarkFig10TradeOff(b *testing.B) {
	d := dataset.Generate(dataset.ML10M, benchScale, 11)
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, 30, knn.Options{})
	for _, bits := range []int{64, 256, 1024, 4096} {
		shfP := knn.NewSHFProvider(core.MustScheme(bits, 11), d.Profiles)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var g *knn.Graph
			for i := 0; i < b.N; i++ {
				g, _ = knn.Hyrec(shfP, 30, knn.Options{Seed: 11})
			}
			b.ReportMetric(knn.Quality(g, exact, exactP), "quality")
		})
	}
}

// BenchmarkFig11Heatmap measures the similarity-distortion heatmap pass
// (paper Fig 11), reporting the fraction of pairs within 0.05 of the
// diagonal.
func BenchmarkFig11Heatmap(b *testing.B) {
	d := dataset.Generate(dataset.ML10M, benchScale, 12)
	for _, bits := range []int{1024, 4096} {
		s := core.MustScheme(bits, 12)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var h *analysis.Heatmap
			for i := 0; i < b.N; i++ {
				var err error
				h, err = analysis.ComputeHeatmap(d.Profiles, s, 50000, 100, 12)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(h.DiagonalMass(0.05), "within-0.05")
		})
	}
}

// BenchmarkFig12Convergence measures Hyrec runs per fingerprint size
// (paper Fig 12), reporting iterations and scanrate.
func BenchmarkFig12Convergence(b *testing.B) {
	d := dataset.Generate(dataset.ML10M, benchScale, 13)
	n := d.NumUsers()
	for _, bits := range []int{0, 128, 1024, 8192} { // 0 = native
		var p knn.Provider = knn.NewExplicitProvider(d.Profiles)
		name := "native"
		if bits > 0 {
			p = knn.NewSHFProvider(core.MustScheme(bits, 13), d.Profiles)
			name = fmt.Sprintf("bits=%d", bits)
		}
		b.Run(name, func(b *testing.B) {
			var stats knn.Stats
			for i := 0; i < b.N; i++ {
				_, stats = knn.Hyrec(p, 30, knn.Options{Seed: 13})
			}
			b.ReportMetric(float64(stats.Iterations), "iterations")
			b.ReportMetric(stats.ScanRate(n), "scanrate")
		})
	}
}

// BenchmarkExtensionKIFF measures the KIFF extension (related work §6) on
// a dense and a sparse dataset shape, native vs GoldFinger.
func BenchmarkExtensionKIFF(b *testing.B) {
	for _, preset := range []dataset.Preset{dataset.ML1M, dataset.DBLP} {
		d := dataset.Generate(preset, benchScale, 18)
		exactP := knn.NewExplicitProvider(d.Profiles)
		shfP := knn.NewSHFProvider(core.MustScheme(1024, 18), d.Profiles)
		for _, mode := range []struct {
			name string
			p    knn.Provider
		}{{"native", exactP}, {"goldfinger", shfP}} {
			b.Run(preset.Name+"/"+mode.name, func(b *testing.B) {
				var stats knn.Stats
				for i := 0; i < b.N; i++ {
					_, stats = knn.KIFF(d.Profiles, mode.p, 30, knn.KIFFOptions{})
				}
				b.ReportMetric(stats.ScanRate(d.NumUsers()), "scanrate")
			})
		}
	}
}

// BenchmarkExtensionBisection measures the divide-and-conquer extension
// (Chen et al., §6), native vs GoldFinger.
func BenchmarkExtensionBisection(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 19)
	exactP := knn.NewExplicitProvider(d.Profiles)
	shfP := knn.NewSHFProvider(core.MustScheme(1024, 19), d.Profiles)
	for _, mode := range []struct {
		name string
		p    knn.Provider
	}{{"native", exactP}, {"goldfinger", shfP}} {
		b.Run(mode.name, func(b *testing.B) {
			var stats knn.Stats
			for i := 0; i < b.N; i++ {
				_, stats = knn.RecursiveBisection(d.Profiles, mode.p, 30,
					knn.BisectionOptions{NumItems: d.NumItems, Seed: 19})
			}
			b.ReportMetric(stats.ScanRate(d.NumUsers()), "scanrate")
		})
	}
}

// BenchmarkExtensionGossip measures the decentralized gossip protocol
// (Gossple-style, the paper's motivating context), native vs GoldFinger,
// reporting the achieved quality.
func BenchmarkExtensionGossip(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 20)
	exactP := knn.NewExplicitProvider(d.Profiles)
	exact, _ := knn.BruteForce(exactP, 10, knn.Options{})
	shfP := knn.NewSHFProvider(core.MustScheme(1024, 20), d.Profiles)
	for _, mode := range []struct {
		name string
		p    knn.Provider
	}{{"native", exactP}, {"goldfinger", shfP}} {
		b.Run(mode.name, func(b *testing.B) {
			var g *knn.Graph
			for i := 0; i < b.N; i++ {
				var err error
				g, _, err = gossip.Simulate(mode.p, gossip.Config{K: 10, Rounds: 15, Seed: 20})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(knn.Quality(g, exact, exactP), "quality")
		})
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationMultiHash compares the single-hash SHF against
// Bloom-style multi-hash fingerprints (paper §2.3's argument for one hash),
// reporting the mean absolute estimation error.
func BenchmarkAblationMultiHash(b *testing.B) {
	var items1, items2 []profile.ItemID
	for i := 0; i < 80; i++ {
		items1 = append(items1, profile.ItemID(i))
		items2 = append(items2, profile.ItemID(i+40))
	}
	p1, p2 := profile.New(items1...), profile.New(items2...)
	truth := profile.Jaccard(p1, p2)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("hashes=%d", k), func(b *testing.B) {
			var errSum float64
			count := 0
			for i := 0; i < b.N; i++ {
				s, err := core.NewMultiHashScheme(512, k, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				est := core.Jaccard(s.Fingerprint(p1), s.Fingerprint(p2))
				if est > truth {
					errSum += est - truth
				} else {
					errSum += truth - est
				}
				count++
			}
			b.ReportMetric(errSum/float64(count), "mean-abs-error")
		})
	}
}

// BenchmarkAblationHashFunction compares the two item-hash choices: the
// paper's Jenkins lookup3 against the default 64-bit mixer. Estimator
// quality is identical (see core tests); this measures fingerprinting cost.
func BenchmarkAblationHashFunction(b *testing.B) {
	p := randomProfile(rand.New(rand.NewSource(21)), 80, 100000)
	for _, kind := range []struct {
		name string
		k    core.HashKind
	}{{"mix64", core.HashMix64}, {"jenkins", core.HashJenkins}} {
		s, err := core.NewSchemeWithHash(1024, 21, kind.k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Fingerprint(p)
			}
		})
	}
}

// BenchmarkExtensionDynamic measures incremental maintenance: one rating
// update (fingerprint refresh + local repair) per iteration.
func BenchmarkExtensionDynamic(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 22)
	scheme := core.MustScheme(1024, 22)
	dyn, err := knn.NewDynamic(scheme, d.Profiles, 10, knn.Options{Seed: 22})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % d.NumUsers()
		if _, err := dyn.AddRating(u, profile.ItemID(d.NumItems+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPopcount compares the word-wise AND+popcount kernel
// against a naive per-bit loop.
func BenchmarkAblationPopcount(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	s := core.MustScheme(1024, 14)
	f1 := s.Fingerprint(randomProfile(rng, 80, 10000))
	f2 := s.Fingerprint(randomProfile(rng, 80, 10000))
	b.Run("word-popcount", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink += core.IntersectionEstimate(f1, f2)
		}
		_ = sink
	})
	b.Run("bit-loop", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			n := 0
			for j := 0; j < f1.NumBits(); j++ {
				if f1.Bits().Test(j) && f2.Bits().Test(j) {
					n++
				}
			}
			sink += n
		}
		_ = sink
	})
}

// BenchmarkAblationStoredCardinality compares Eq. 4 with the cached
// cardinality against recomputing |B| on every comparison.
func BenchmarkAblationStoredCardinality(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	s := core.MustScheme(1024, 15)
	f1 := s.Fingerprint(randomProfile(rng, 80, 10000))
	f2 := s.Fingerprint(randomProfile(rng, 80, 10000))
	b.Run("stored", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += core.Jaccard(f1, f2)
		}
		_ = sink
	})
	b.Run("recomputed", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			inter := core.IntersectionEstimate(f1, f2)
			union := f1.Bits().Count() + f2.Bits().Count() - inter
			if union > 0 {
				sink += float64(inter) / float64(union)
			}
		}
		_ = sink
	})
}

// BenchmarkAblationProfileRepr compares the sorted-slice merge against a
// map-based intersection for exact Jaccard.
func BenchmarkAblationProfileRepr(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	p1 := randomProfile(rng, 80, 10000)
	p2 := randomProfile(rng, 80, 10000)
	set1 := map[profile.ItemID]bool{}
	for _, it := range p1 {
		set1[it] = true
	}
	b.Run("sorted-merge", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += profile.Jaccard(p1, p2)
		}
		_ = sink
	})
	b.Run("hash-set", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			inter := 0
			for _, it := range p2 {
				if set1[it] {
					inter++
				}
			}
			sink += float64(inter) / float64(len(p1)+len(p2)-inter)
		}
		_ = sink
	})
}

// BenchmarkAblationPackedCorpus compares full brute-force SHF construction
// across the three storage/dispatch designs of DESIGN.md §8: the packed
// corpus through the blocked BatchProvider kernels, the same tiled scan
// forced onto per-pair dispatch, and the legacy per-pair scan with shared
// mutex-guarded neighborhoods.
func BenchmarkAblationPackedCorpus(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 23)
	shfP := knn.NewSHFProvider(core.MustScheme(1024, 23), d.Profiles)
	b.Run("packed-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.BruteForce(shfP, 30, knn.Options{})
		}
	})
	b.Run("legacy-per-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.LegacyBruteForce(shfP, 30, knn.Options{})
		}
	})
}

// BenchmarkAblationParallel measures Brute Force scaling with the worker
// count.
func BenchmarkAblationParallel(b *testing.B) {
	d := dataset.Generate(dataset.ML1M, benchScale, 17)
	shfP := knn.NewSHFProvider(core.MustScheme(1024, 17), d.Profiles)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				knn.BruteForce(shfP, 30, knn.Options{Workers: workers})
			}
		})
	}
}
