// Package goldfinger reproduces "Fingerprinting Big Data: The Case of KNN
// Graph Construction" (Guerraoui, Kermarrec, Ruas, Taïani — ICDE 2019).
//
// The library lives under internal/: core (Single Hash Fingerprints and
// their wire codec), profile (explicit profiles and exact similarities),
// knn (Brute Force, Hyrec, NNDescent, LSH, KIFF, Recursive Bisection and
// dynamic maintenance over pluggable similarity providers), dataset
// (preparation pipeline, parsers and calibrated synthetic generators),
// minhash (the b-bit minwise baseline), sampling (the profile-truncation
// baseline), recommend (the paper's case study), combin and analysis
// (Theorem 1, exactly and by Monte Carlo), privacy (k-anonymity /
// ℓ-diversity), memtrack (memory-traffic model), gossip (decentralized
// deployment), service (the untrusted-server deployment over HTTP) and
// eval (the experiment harness behind cmd/goldfinger).
//
// The benchmarks in this package regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package goldfinger
