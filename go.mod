module goldfinger

go 1.22
